"""CLI front end: ``python -m repro.serve {http,loadgen}``.

``http``
    Register one or more models and serve the JSON-over-HTTP endpoint
    until interrupted::

        python -m repro.serve http --model resnet18 --width-mult 0.25 --port 8707
        curl -s localhost:8707/v1/models
        curl -s -X POST localhost:8707/v1/infer \\
            -d '{"model": "resnet18", "inputs": [[[0,0,0], ...]]}'

``loadgen``
    In-process benchmark (no sockets in the measured path): registers the
    model, runs an open- or closed-loop load against the dynamic batcher
    and prints throughput, p50/p95/p99 latency and the batch-size
    histogram — with ``--serial`` as the ``max_batch_size=1`` comparison::

        python -m repro.serve loadgen --model resnet18 --width-mult 0.125 \\
            --requests 64 --concurrency 16 --max-batch 8 --compare-serial

    With ``--workers N[,N...]`` it becomes the **cluster sweep**: one
    fresh multi-process cluster per worker count, same deterministic
    closed-loop workload, printing the throughput-vs-worker-count scaling
    curve plus the pickle-free control-plane verdict::

        python -m repro.serve loadgen --model resnet18 --width-mult 0.125 \\
            --requests 48 --concurrency 16 --workers 1,2,4

Both commands accept ``--workers`` — ``http --workers 4`` serves through a
:class:`~repro.serve.cluster.ClusterRouter` (sharded multi-process backend,
aggregated ``/metrics`` and ``/v1/stats``) instead of a single in-process
service.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from dataclasses import replace

from .. import obs
from ..obs.slo import SLOConfig
from .batching import BatchPolicy
from .loadgen import closed_loop, open_loop
from .scheduler import SchedulerConfig
from .service import InferenceService

__all__ = ["main"]


def _add_model_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", action="append", default=None, metavar="ARCH[:NAME]",
                   help="architecture to register (resnet18/34, vgg16/19/16x5/16x7); "
                        "repeatable; default resnet18")
    p.add_argument("--image", type=int, default=32, help="square input size (default 32)")
    p.add_argument("--width-mult", type=float, default=0.25,
                   help="channel width multiplier (default 0.25)")
    p.add_argument("--classes", type=int, default=10)
    p.add_argument("--weights", default=None, metavar="PATH",
                   help="optional save_weights .npz to load into the (single) model")


def _add_policy_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--max-batch", type=int, default=8, help="max coalesced rows (default 8)")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="max queueing delay before a partial batch flushes (default 2)")
    p.add_argument("--max-workspace-mb", type=float, default=None,
                   help="per-dispatch workspace budget in MiB (default unbounded)")
    p.add_argument("--queue-depth", type=int, default=256, help="admission bound (default 256)")
    p.add_argument("--timeout-ms", type=float, default=1000.0,
                   help="default request deadline (default 1000)")
    p.add_argument("--telemetry", action="store_true",
                   help="enable obs spans, request traces and /metrics content")
    p.add_argument("--slo-target-ms", type=float, default=None, metavar="MS",
                   help="enable SLO tracking: latency target in ms")
    p.add_argument("--slo-error-budget", type=float, default=0.01,
                   help="allowed bad fraction (default 0.01 = 99%% SLO)")
    p.add_argument("--slo-window-s", type=float, default=300.0,
                   help="slow burn window seconds (default 300)")
    p.add_argument("--slo-fast-window-s", type=float, default=30.0,
                   help="fast burn window seconds (default 30)")


def _build_service(args: argparse.Namespace) -> InferenceService:
    ws = None if args.max_workspace_mb is None else int(args.max_workspace_mb * 1024 * 1024)
    if args.telemetry:
        obs.enable()
        obs.telemetry.enable()
        # Long-running server: bound the global span forest too.
        obs.get_tracer().set_root_limit(4096)
    slo = None
    if args.slo_target_ms is not None:
        slo = SLOConfig(
            latency_target_ms=args.slo_target_ms,
            error_rate_target=args.slo_error_budget,
            window_s=args.slo_window_s,
            fast_window_s=args.slo_fast_window_s,
        )
    service = InferenceService(
        config=SchedulerConfig(
            policy=BatchPolicy(
                max_batch_size=args.max_batch,
                max_queue_delay_ms=args.max_delay_ms,
                max_workspace_bytes=ws,
            ),
            max_queue_depth=args.queue_depth,
            default_timeout_ms=args.timeout_ms,
            slo=slo,
        )
    )
    specs = args.model or ["resnet18"]
    for spec in specs:
        arch, _, name = spec.partition(":")
        service.registry.register(
            name or arch, arch=arch, image=args.image,
            width_mult=args.width_mult, classes=args.classes,
        )
        print(f"[serve] registered {name or arch!r} ({arch}), "
              f"{service.registry.get(name or arch).executables_resolved} executables warmed")
    if args.weights:
        if len(specs) != 1:
            raise SystemExit("--weights requires exactly one --model")
        arch, _, name = specs[0].partition(":")
        service.registry.load_weights(name or arch, args.weights)
        print(f"[serve] loaded weights from {args.weights}")
    return service


def _cluster_pieces(args: argparse.Namespace):
    """Model specs + cluster config from the shared CLI arguments."""
    from .cluster import ClusterConfig
    from .cluster.worker import ModelSpec

    if args.telemetry:
        # The config below turns telemetry on inside each worker process;
        # the router process needs its own switch flipped too, or the
        # front end drops the client's traceparent on the floor.
        obs.enable()
        obs.telemetry.enable()
        obs.get_tracer().set_root_limit(4096)
    specs = []
    for spec_str in args.model or ["resnet18"]:
        arch, _, name = spec_str.partition(":")
        specs.append(
            ModelSpec(
                name=name or arch, arch=arch, image=args.image,
                classes=args.classes, width_mult=args.width_mult,
            )
        )
    cfg = ClusterConfig(
        max_batch_size=args.max_batch,
        max_queue_delay_ms=args.max_delay_ms,
        default_timeout_ms=args.timeout_ms,
        telemetry=args.telemetry,
        obs=args.telemetry,
    )
    return specs, cfg


async def _run_sweep(args: argparse.Namespace) -> int:
    from .loadgen import workers_sweep

    counts = tuple(sorted({int(tok) for tok in args.workers.split(",") if tok.strip()}))
    if not counts:
        raise SystemExit("--workers needs at least one count, e.g. --workers 1,2,4")
    specs, cfg = _cluster_pieces(args)
    result = await workers_sweep(
        specs,
        worker_counts=counts,
        requests=args.requests,
        concurrency=args.concurrency,
        cluster_config=cfg,
    )
    print(json.dumps(result.as_dict(), indent=2) if args.json else result.report())
    return 0


async def _run_cluster_http(args: argparse.Namespace) -> int:
    from .cluster import ClusterRouter

    specs, cfg = _cluster_pieces(args)
    cfg = replace(cfg, workers=int(args.workers))
    router = ClusterRouter(specs, cfg)
    async with router:
        host, port = await router.serve_http(args.host, args.port)
        print(f"[serve] cluster of {cfg.workers} workers listening on "
              f"http://{host}:{port} (/healthz, /metrics, /v1/models, "
              f"/v1/stats, POST /v1/infer)")
        try:
            await asyncio.Event().wait()  # serve until interrupted
        except asyncio.CancelledError:
            pass
    return 0


async def _run_http(args: argparse.Namespace) -> int:
    if args.workers:
        return await _run_cluster_http(args)
    service = _build_service(args)
    async with service:
        host, port = await service.serve_http(args.host, args.port)
        print(f"[serve] listening on http://{host}:{port} "
              f"(/healthz, /metrics, /v1/models, /v1/stats, POST /v1/infer)")
        try:
            await asyncio.Event().wait()  # serve until interrupted
        except asyncio.CancelledError:
            pass
    return 0


async def _run_loadgen(args: argparse.Namespace) -> int:
    if args.workers:
        return await _run_sweep(args)
    service = _build_service(args)
    model = (args.model or ["resnet18"])[0].partition(":")[0]
    results = {}
    async with service:
        if args.mode == "closed":
            results["batched"] = await closed_loop(
                service, model, requests=args.requests, concurrency=args.concurrency,
            )
        else:
            results["batched"] = await open_loop(
                service, model, requests=args.requests, rate_rps=args.rate,
            )
    if args.compare_serial:
        serial = InferenceService(
            config=SchedulerConfig(
                policy=BatchPolicy(max_batch_size=1, max_queue_delay_ms=0.0),
                max_queue_depth=args.queue_depth,
                default_timeout_ms=None,
            )
        )
        serial.registry.register(model, width_mult=args.width_mult,
                                 image=args.image, classes=args.classes)
        async with serial:
            results["serial"] = await closed_loop(
                serial, model, requests=args.requests, concurrency=1,
            )
    if args.json:
        doc = {k: r.as_dict() for k, r in results.items()}
        if "serial" in results and results["serial"].requests_per_sec > 0:
            doc["batch_speedup"] = (
                results["batched"].requests_per_sec / results["serial"].requests_per_sec
            )
        print(json.dumps(doc, indent=2))
    else:
        for r in results.values():
            print(r.report())
        if "serial" in results and results["serial"].requests_per_sec > 0:
            print(f"[loadgen] dynamic batching speedup: "
                  f"{results['batched'].requests_per_sec / results['serial'].requests_per_sec:.2f}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Dynamic-batching inference serving on the compiled-plan runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    http = sub.add_parser("http", help="serve the JSON-over-HTTP endpoint")
    _add_model_args(http)
    _add_policy_args(http)
    http.add_argument("--host", default="127.0.0.1")
    http.add_argument("--port", type=int, default=8707)
    http.add_argument("--workers", default=None, metavar="N",
                      help="serve through a multi-process cluster of N workers")

    lg = sub.add_parser("loadgen", help="run an in-process load benchmark")
    _add_model_args(lg)
    _add_policy_args(lg)
    lg.add_argument("--mode", choices=("closed", "open"), default="closed")
    lg.add_argument("--requests", type=int, default=64)
    lg.add_argument("--concurrency", type=int, default=16, help="closed-loop workers")
    lg.add_argument("--rate", type=float, default=200.0, help="open-loop arrivals/sec")
    lg.add_argument("--compare-serial", action="store_true",
                    help="also run max_batch_size=1 and print the speedup")
    lg.add_argument("--workers", default=None, metavar="N[,N...]",
                    help="cluster sweep mode: run the closed loop against a fresh "
                         "multi-process cluster per worker count (e.g. 1,2,4) and "
                         "print the scaling curve")
    lg.add_argument("--json", action="store_true", help="machine-readable output")

    args = parser.parse_args(argv)
    try:
        if args.command == "http":
            return asyncio.run(_run_http(args))
        return asyncio.run(_run_loadgen(args))
    except KeyboardInterrupt:
        print("[serve] interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
