"""Shared JSON-over-HTTP front end for the serving tier.

One dependency-free HTTP/1.1 server (``asyncio.start_server``) used by
both faces of the serving layer — :class:`~repro.serve.service.InferenceService`
(single process) and :class:`~repro.serve.cluster.ClusterRouter` (the
multi-worker tier) — so wire behaviour (keep-alive handling, header
parsing, error statuses, body limits) is one implementation with one test
surface, not two drifting copies.

The server owns connections only; routing is delegated to an async
``dispatch(method, path, headers, body)`` callable returning
``(status, payload, extra_headers)`` — a ``dict`` payload is sent as
JSON, a ``str`` verbatim with the content type named in the extra headers
(the Prometheus exposition route).

:func:`handle_infer_request` is the shared ``POST /v1/infer`` body:
traceparent continuation, payload validation and the typed-error → HTTP
status mapping around any ``infer(model, x, timeout_ms=..., trace=...)``
coroutine — the single-process scheduler and the cluster router plug in
their own.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Awaitable, Callable, Protocol

import numpy as np

from ..obs import telemetry
from ..obs.telemetry import TraceContext
from .errors import BadRequest, ServeError

__all__ = ["JsonHttpServer", "handle_infer_request", "REASONS"]

#: Reason phrases for the statuses the serving layer emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Request-body cap: a (max_batch, H, W, C) float32 payload rendered as a
#: JSON nested list is large but bounded; past this is a client error.
MAX_BODY_BYTES = 64 * 1024 * 1024

DispatchResult = tuple[int, "dict[str, object] | str", dict[str, str]]
Dispatch = Callable[[str, str, dict[str, str], bytes], Awaitable[DispatchResult]]


class _InferFn(Protocol):
    def __call__(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout_ms: float | None | object = "default",
        trace: TraceContext | None = None,
    ) -> Awaitable[np.ndarray]: ...


class JsonHttpServer:
    """Minimal keep-alive HTTP/1.1 server over a dispatch coroutine."""

    def __init__(self, dispatch: Dispatch) -> None:
        self._dispatch = dispatch
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.Task[None]] = set()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle_conn, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Stop accepting, then close lingering keep-alive connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
            self._conns.clear()

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
            task.add_done_callback(self._conns.discard)
        try:
            while True:
                request = await self.read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = await self._dispatch(
                    method, path, headers, body
                )
                if isinstance(payload, str):
                    data = payload.encode()
                    ctype = extra.pop("content-type", "text/plain; charset=utf-8")
                else:
                    data = (json.dumps(payload) + "\n").encode()
                    ctype = "application/json"
                head = [
                    f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}",
                    f"Content-Type: {ctype}",
                    f"Content-Length: {len(data)}",
                    "Connection: keep-alive",
                ]
                head.extend(f"{k}: {v}" for k, v in extra.items())
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + data)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass  # server stop closes lingering keep-alive connections
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _ = line.decode("latin-1").split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = min(int(headers.get("content-length", "0")), MAX_BODY_BYTES)
        except ValueError:
            length = 0
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body


async def handle_infer_request(
    infer: _InferFn, headers: dict[str, str], body: bytes
) -> DispatchResult:
    """The shared ``POST /v1/infer`` body around any infer coroutine."""
    # Continue the client's W3C trace (or start one) before any parsing
    # can fail, so even error responses carry the traceparent back.
    trace: TraceContext | None = None
    extra: dict[str, str] = {}
    if telemetry.enabled():
        trace = telemetry.start_trace(headers.get("traceparent"))
        extra["traceparent"] = trace.traceparent()
    try:
        try:
            payload = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or "model" not in payload
            or "inputs" not in payload
        ):
            raise BadRequest('POST /v1/infer expects {"model": ..., "inputs": ...}')
        try:
            x = np.asarray(payload["inputs"], dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"inputs are not a numeric array: {exc}") from exc
        timeout_ms = payload.get("timeout_ms", "default")
        t0 = time.perf_counter()
        out = await infer(str(payload["model"]), x, timeout_ms=timeout_ms, trace=trace)
    except ServeError as exc:
        err: dict[str, object] = {"error": str(exc), "kind": type(exc).__name__}
        if trace is not None:
            err["trace_id"] = trace.trace_id
        return exc.http_status, err, extra
    response: dict[str, object] = {
        "model": payload["model"],
        "outputs": out.tolist(),
        "latency_ms": (time.perf_counter() - t0) * 1e3,
    }
    if trace is not None:
        response["trace_id"] = trace.trace_id
    return 200, response, extra
