"""Model registry: named, frozen, pre-resolved models ready to serve.

Registration does everything expensive exactly once, before the first
request arrives:

* builds (or adopts) a :mod:`repro.dlframe` model and pins it in ``eval``
  mode — serving must be a pure function of the weights, so BatchNorm uses
  running statistics and nothing mutates per request;
* **warms** the model through the compiled-plan runtime: one forward pass
  resolves every unit-stride convolution to its cached
  :class:`~repro.runtime.executable.ConvExecutable` (plan + transform
  matrices + gather descriptors + einsum paths) and pays the §6.1.2
  filter-transform miss, so the first real request hits everywhere;
* measures the model's **per-row workspace** from the executables the
  warmup resolved (:meth:`~repro.runtime.executable.ConvExecutable.per_row_workspace_bytes`),
  which the dynamic batcher's workspace-budget flush trigger consumes;
* tracks a **weight version** per model, bumped by
  :meth:`ModelRegistry.load_weights` — the serving twin of the runtime's
  content-hashed filter-transform tokens: reloading weights invalidates the
  cached filter transforms exactly once per conv, then hits again.

Batch-row execution floor
-------------------------
:data:`MIN_EXECUTE_ROWS` pins the smallest batch the registry will hand to
BLAS.  A single-row matmul takes the gemv special-case, whose accumulation
differs in the last bits from the gemm path every row of a larger batch
takes — so a 1-row dispatch and the same row inside a coalesced batch
could disagree.  Padding every execution to at least two rows keeps the
whole serving surface on one BLAS path, making responses **bit-identical
across any batch composition** (the serving analogue of the paper's tile
quantization: the batch-1 dispatch provably wastes its tail slot, and
coalescing is what fills it).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from .. import runtime
from ..dlframe.autograd import Tensor, no_grad
from ..dlframe.layers import Conv2D, Module
from ..dlframe.models.resnet import resnet18, resnet34
from ..dlframe.models.vgg import vgg16, vgg16x5, vgg16x7, vgg19
from ..dlframe.serialization import load_weights as _load_weights
from ..obs import counter_add, span
from ..obs.telemetry import trace_span
from .batching import BatchPolicy
from .errors import BadRequest, ModelNotFound

__all__ = [
    "MIN_EXECUTE_ROWS",
    "MODEL_BUILDERS",
    "ModelRegistry",
    "RegisteredModel",
    "padded_rows",
]

#: Smallest row count ever dispatched to the model (see module docstring):
#: below this, BLAS routes matmuls to the gemv path whose accumulation
#: differs bitwise from the gemm path batched rows take.
MIN_EXECUTE_ROWS = 2

#: Heuristic per-row workspace when warmup resolved no *new* executables
#: (another model of the same geometry warmed the cache first): a deep CNN
#: holds a few dozen activation maps of roughly input size in flight.
_FALLBACK_WORKSPACE_FACTOR = 64

#: Named architectures :meth:`ModelRegistry.register` can build directly.
MODEL_BUILDERS: dict[str, Callable[..., Module]] = {
    "resnet18": resnet18,
    "resnet34": resnet34,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "vgg16x5": vgg16x5,
    "vgg16x7": vgg16x7,
}


def padded_rows(k: int, batch_quantum: int = 1) -> int:
    """Rows actually executed for a ``k``-row batch under ``batch_quantum``.

    The serving analogue of §4.1's tile/wave quantization: execution is
    quantized to ``batch_quantum`` rows (and never below
    :data:`MIN_EXECUTE_ROWS`), so ``padded_rows(k) - k`` is the pad-row
    waste a dispatch pays — the number telemetry attributes per batch.
    """
    if batch_quantum < 1:
        raise ValueError(f"batch_quantum must be >= 1, got {batch_quantum}")
    return max(MIN_EXECUTE_ROWS, -(-k // batch_quantum) * batch_quantum)


def _iter_modules(module: Module) -> Iterator[Module]:
    """Depth-first walk over a module tree (the layers' containment idiom)."""
    yield module
    for value in vars(module).values():
        if isinstance(value, Module):
            yield from _iter_modules(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Module):
                    yield from _iter_modules(item)


@dataclass
class RegisteredModel:
    """One served model plus everything registration pre-resolved."""

    name: str
    model: Module
    input_shapes: tuple[tuple[int, int, int], ...]
    dtype: str = "float32"
    weight_version: int = 0
    winograd_convs: int = 0
    total_convs: int = 0
    executables_resolved: int = 0
    per_row_workspace_bytes: int = 0
    warmup_ms: float = 0.0
    #: Conv signatures the warmup forward resolved fresh — the set warmup
    #: tuning (``register(tune=True)``) searches.
    conv_signatures: tuple[runtime.ConvSignature, ...] = ()
    #: Tuned entries installed for this model by warmup tuning.
    tuned_convs: int = 0
    #: Affine predicted batch cost (conv portion, from the machine cost
    #: model): one dispatch of ``k`` rows ≈ ``call + row * padded_rows(k)``.
    predicted_row_ns: float = 0.0
    predicted_call_ns: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- request validation -------------------------------------------------

    def validate(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        """Coerce a request payload to ``(rows, was_unbatched)``.

        Accepts one sample ``(H, W, C)`` or a micro-batch ``(n, H, W, C)``
        whose row shape matches one of the registered input shapes; the
        flag tells the response path whether to squeeze the batch axis
        back off.
        """
        arr = np.asarray(x, dtype=self.dtype)
        squeeze = arr.ndim == 3
        if squeeze:
            arr = arr[None]
        if arr.ndim != 4 or arr.shape[0] < 1:
            raise BadRequest(
                f"model {self.name!r} expects (H, W, C) or (n, H, W, C), got {arr.shape}"
            )
        if tuple(arr.shape[1:]) not in self.input_shapes:
            raise BadRequest(
                f"model {self.name!r} serves input shapes {list(self.input_shapes)}, "
                f"got {tuple(arr.shape[1:])}"
            )
        return arr, squeeze

    # -- execution ----------------------------------------------------------

    def infer_rows(self, rows: np.ndarray, *, batch_quantum: int = 1) -> np.ndarray:
        """Forward ``rows`` through the frozen model, batch-composition-stably.

        The executed batch is zero-padded up to
        ``max(MIN_EXECUTE_ROWS, ceil(rows / batch_quantum) * batch_quantum)``
        and the padding sliced back off: every row's arithmetic is then
        independent of how many real requests shared its batch, so any
        dynamic batch composition returns the same bits as batch-1 serial
        execution (asserted in the test suite).
        """
        k = rows.shape[0]
        target = padded_rows(k, batch_quantum)
        if target != k:
            counter_add("serve.pad.rows", target - k, model=self.name)
            padded = np.zeros((target,) + rows.shape[1:], dtype=rows.dtype)
            padded[:k] = rows
        else:
            padded = rows
        with span("serve.model", model=self.name, rows=k, executed_rows=target):
            with trace_span(
                "serve.model",
                model=self.name,
                rows=k,
                executed_rows=target,
                pad_rows=target - k,
            ):
                with no_grad():
                    out = self.model(Tensor(padded)).data
        return out[:k]

    def predicted_batch_ns(self, rows: int, *, batch_quantum: int = 1) -> float:
        """Predicted wallclock ns of dispatching ``rows`` as one batch.

        The calibrated (or hand-set) machine cost model summed over the
        model's warmed conv executables, evaluated at the rows the dispatch
        will actually execute (quantized + MIN_EXECUTE_ROWS padding).  The
        scheduler's deadline-pressure flush and the predicted-vs-actual
        batch cost stats both consume this.
        """
        executed = padded_rows(rows, batch_quantum)
        return self.predicted_call_ns + self.predicted_row_ns * executed

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict[str, object]:
        with self._lock:
            weight_version = self.weight_version
        return {
            "name": self.name,
            "input_shapes": [list(s) for s in self.input_shapes],
            "dtype": self.dtype,
            "weight_version": weight_version,
            "winograd_convs": self.winograd_convs,
            "total_convs": self.total_convs,
            "executables_resolved": self.executables_resolved,
            "per_row_workspace_bytes": self.per_row_workspace_bytes,
            "warmup_ms": self.warmup_ms,
            "tuned_convs": self.tuned_convs,
            "predicted_row_ns": self.predicted_row_ns,
            "predicted_call_ns": self.predicted_call_ns,
            "parameters": self.model.num_parameters(),
        }


class ModelRegistry:
    """Thread-safe name → :class:`RegisteredModel` store with warmup."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._models: dict[str, RegisteredModel] = {}

    # -- registration -------------------------------------------------------

    def register(
        self,
        name: str,
        model: Module | None = None,
        *,
        arch: str | None = None,
        image: int = 32,
        in_channels: int = 3,
        classes: int = 10,
        width_mult: float = 1.0,
        engine: str = "winograd",
        seed: int = 0,
        extra_images: tuple[int, ...] = (),
        warmup: bool = True,
        tune: bool = False,
        tune_batch: int | None = None,
        tune_reps: int = 2,
    ) -> RegisteredModel:
        """Register ``model`` (or build ``arch``) under ``name`` and warm it.

        ``extra_images`` warms additional square input sizes (models whose
        head tolerates them, e.g. ResNet's global pooling) so each size's
        executables are resolved up front and admitted as request buckets.

        ``tune=True`` extends the warmup contract from *resolved* to
        *searched*: every conv signature the warmup pass resolved fresh is
        autotuned (:func:`repro.runtime.autotune.tune_signature`) at the
        batch bucket serving will dispatch (``tune_batch``, default the
        batcher's ``max_batch_size`` default of 8) and the winners are
        installed into the process's active tuning table — activating a
        fresh empty table if none is.  Serving then benefits from tuned
        dispatch without cold-path stalls; requests never wait on a search.
        """
        if model is None:
            if arch is None:
                arch = name
            if arch not in MODEL_BUILDERS:
                raise ModelNotFound(
                    f"unknown architecture {arch!r}; known: {sorted(MODEL_BUILDERS)}"
                )
            model = MODEL_BUILDERS[arch](
                classes=classes,
                in_channels=in_channels,
                width_mult=width_mult,
                engine=engine,
                seed=seed,
                **({"image": image} if arch.startswith("vgg") else {}),
            )
        model.eval()
        convs = [m for m in _iter_modules(model) if isinstance(m, Conv2D)]
        entry = RegisteredModel(
            name=name,
            model=model,
            input_shapes=tuple(
                (hw, hw, in_channels) for hw in (image, *extra_images)
            ),
            winograd_convs=sum(1 for c in convs if c.effective_engine == "winograd"),
            total_convs=len(convs),
        )
        with self._lock:
            if name in self._models:
                raise ValueError(f"model {name!r} is already registered")
            self._models[name] = entry
        if warmup:
            self._warm(entry)
        if tune:
            if not warmup:
                raise ValueError("register(tune=True) requires warmup=True")
            self._tune(entry, tune_batch, tune_reps)
        counter_add("serve.models.registered")
        return entry

    def _warm(self, entry: RegisteredModel) -> None:
        """Pre-resolve every conv through the runtime executable cache.

        One forward per registered input shape: the executable cache takes
        the plan/transform/einsum misses, the filter-transform cache takes
        its one content-hash miss per conv, and the executables the pass
        resolved yield the measured per-row workspace the batcher budgets
        with.
        """
        before = {id(e) for e in runtime.global_cache().executables()}
        t0 = time.perf_counter()
        per_row_floor = 0
        for h, w, c in entry.input_shapes:
            zeros = np.zeros((MIN_EXECUTE_ROWS, h, w, c), dtype=entry.dtype)
            entry.infer_rows(zeros)
            per_row_floor = max(per_row_floor, zeros[0].nbytes)
        entry.warmup_ms = (time.perf_counter() - t0) * 1e3
        fresh = [
            e for e in runtime.global_cache().executables() if id(e) not in before
        ]
        entry.executables_resolved = len(fresh)
        entry.conv_signatures = tuple(e.sig for e in fresh)
        entry.per_row_workspace_bytes = max(
            (e.per_row_workspace_bytes() for e in fresh),
            # Warm cache (a same-geometry model registered first): fall back
            # to a documented input-scaled heuristic.
            default=per_row_floor * _FALLBACK_WORKSPACE_FACTOR,
        )
        if fresh:
            # Conv fit terms are affine in the batch, so summing each
            # executable's (constant, per-row) coefficients prices any
            # batch size in O(1) — the cost the batcher's deadline-pressure
            # flush consults per wakeup.
            p1 = sum(e.predicted_ns(1) for e in fresh)
            p2 = sum(e.predicted_ns(2) for e in fresh)
            entry.predicted_row_ns = max(0.0, p2 - p1)
            entry.predicted_call_ns = max(0.0, p1 - (p2 - p1))
        else:
            # Warm cache: measure instead — two post-warmup forwards give
            # the same affine decomposition from wallclock.
            k = MIN_EXECUTE_ROWS
            h, w, c = entry.input_shapes[0]
            t1 = time.perf_counter_ns()
            entry.infer_rows(np.zeros((k, h, w, c), dtype=entry.dtype))
            t2 = time.perf_counter_ns()
            entry.infer_rows(np.zeros((2 * k, h, w, c), dtype=entry.dtype))
            t3 = time.perf_counter_ns()
            per_row = max(0.0, float((t3 - t2) - (t2 - t1)) / k)
            entry.predicted_row_ns = per_row
            entry.predicted_call_ns = max(0.0, float(t2 - t1) - per_row * k)
        counter_add("serve.warmup.executables", entry.executables_resolved)

    def _tune(
        self, entry: RegisteredModel, tune_batch: int | None, tune_reps: int
    ) -> None:
        """Autotune the model's warmed conv set into the active tuning table.

        Entries are measured at the serving batch bucket and installed via
        :func:`repro.runtime.tuningcache.install`; the searched-then-kept
        results also land in the perfledger (``path="tuned"``) so drift
        between tune-time and serve-time cost is observable.  A warm cache
        (same-geometry model registered first) leaves nothing fresh to
        tune — the earlier registration already tuned those signatures.
        """
        from ..runtime import autotune as rt_autotune
        from ..runtime import tuningcache

        batch = tune_batch if tune_batch is not None else BatchPolicy().max_batch_size
        if tuningcache.active_table() is None:
            tuningcache.activate(tuningcache.TuningTable.fresh())
        t0 = time.perf_counter()
        for i, sig in enumerate(entry.conv_signatures):
            tuningcache.install(
                rt_autotune.tune_signature(
                    sig, batch, reps=tune_reps, seed=rt_autotune.TUNE_SEED + i
                )
            )
        entry.tuned_convs = len(entry.conv_signatures)
        counter_add("tune.warmup.signatures", float(entry.tuned_convs), model=entry.name)
        counter_add("tune.warmup.ms", (time.perf_counter() - t0) * 1e3, model=entry.name)

    # -- weight lifecycle ---------------------------------------------------

    def load_weights(
        self, name: str, path: object, *, warmup: bool = True
    ) -> RegisteredModel:
        """Swap ``name``'s weights in place from a ``save_weights`` file.

        Bumps the model's weight version; the runtime's content-hashed
        filter-transform cache then misses exactly once per conv (the new
        weights hash differently) and hits thereafter.  ``warmup=True``
        pays those misses here rather than on the first post-reload request.
        """
        entry = self.get(name)
        with entry._lock:
            _load_weights(entry.model, path)  # type: ignore[arg-type]
            entry.model.eval()
            entry.weight_version += 1
        counter_add("serve.weights.reloaded", model=name)
        if warmup:
            for h, w, c in entry.input_shapes:
                entry.infer_rows(np.zeros((MIN_EXECUTE_ROWS, h, w, c), dtype=entry.dtype))
        return entry

    # -- lookup -------------------------------------------------------------

    def get(self, name: str) -> RegisteredModel:
        with self._lock:
            entry = self._models.get(name)
        if entry is None:
            raise ModelNotFound(f"model {name!r} is not registered")
        return entry

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def describe(self) -> list[dict[str, object]]:
        return [self.get(name).describe() for name in self.names()]
