"""Cluster router: shard by model, lease a slab slot, fan out to workers.

The front end of the multi-process serving tier.  One
:class:`ClusterRouter` owns N spawned workers (:mod:`.worker`), and for
each request:

1. **shard** — the consistent-hash ring (:mod:`.hashring`) maps the model
   name to its replica set, filtered through :class:`~.membership.Membership`
   to workers that are actually ``ready`` (falling back to any ready
   worker when a whole shard is down: availability beats placement);
2. **balance** — within the shard, pick the worker with the fewest
   outstanding requests (least-outstanding beats round-robin under the
   heterogeneous service times dynamic batching produces);
3. **handoff** — lease a slot in that worker's shared-memory slab
   (:mod:`.shm`), copy the tensor in, and send only signature metadata
   over the control pipe; the worker answers into the *same slot* and the
   response is gated on the lease tag still being current.

Failure handling is the membership state machine: a worker's pipe
reaching EOF (crash) fails that worker's in-flight requests with
:class:`~repro.serve.errors.WorkerCrashed`, marks it ``dead``, and — when
restarts are enabled — respawns it under the **same name** (the ring
never changes, so placement is stable) with a bumped generation (a fresh
slab segment, so a stale incarnation can never be read).  A heartbeat
loop pings ready workers and terminates any that stop answering, which
funnels hung workers into the same crash path.

Threading model: all router state (handles, outstanding tables, stats)
is **event-loop-confined** — mutated only from coroutines on the router's
loop, the same discipline as ``Scheduler._inflight`` — so none of it
needs a lock.  The cross-thread structures (membership table, slab
free-lists, control-channel counters) carry their own documented
guards.  Blocking calls (``Connection.recv``, ``Process.join``) always go
through ``run_in_executor``.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.context import SpawnProcess
from typing import Any

import numpy as np

from ...obs import counter_add, gauge_set, telemetry
from ...obs.metrics import MetricsRegistry, get_registry
from ...obs.promexport import render_prometheus
from ...obs.telemetry import TraceContext, TraceSpan
from ...obs.promexport import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from ..errors import (
    BadRequest,
    DeadlineExceeded,
    ModelNotFound,
    QueueFull,
    ServeError,
    ServiceStopped,
    WorkerCrashed,
)
from ..httpfront import JsonHttpServer, handle_infer_request
from .hashring import HashRing
from .membership import Membership
from .messages import ControlChannel
from .shm import SlabLease, SlabRing
from .worker import ModelSpec, WorkerSpec, worker_main

__all__ = ["ClusterConfig", "ClusterRouter"]

#: Worker-reported error kinds mapped back to the typed error surface, so
#: a cluster client sees the same exception classes (and HTTP statuses) as
#: a single-process client.
_ERROR_KINDS: dict[str, type[ServeError]] = {
    "ModelNotFound": ModelNotFound,
    "BadRequest": BadRequest,
    "QueueFull": QueueFull,
    "DeadlineExceeded": DeadlineExceeded,
    "ServiceStopped": ServiceStopped,
    "WorkerCrashed": WorkerCrashed,
    "ServeError": ServeError,
}


@dataclass
class ClusterConfig:
    """Knobs of one cluster instance."""

    #: Worker process count (the fan-out width).
    workers: int = 2
    #: Virtual nodes per worker on the consistent-hash ring.
    vnodes: int = 32
    #: Shard width per model: how many distinct workers serve one model.
    #: ``None`` (default) means *all* ready workers — right for small
    #: clusters and for scaling a single hot model; set it to a small
    #: number to give each model a cache-warm home set instead.
    replication: int | None = None
    #: Slab geometry per worker: slot size bounds the largest request
    #: tensor; slot count bounds that worker's in-flight requests.
    slot_bytes: int = 1 << 20
    slots: int = 16
    #: Per-worker dynamic batching (forwarded into each worker's policy).
    max_batch_size: int = 8
    max_queue_delay_ms: float = 2.0
    default_timeout_ms: float | None = 5000.0
    execute_threads: int = 1
    #: Health checking: ping cadence and the silence that means "hung".
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 10.0
    #: Worker startup budget (spawn + import + warmup (+ tune)).
    start_timeout_s: float = 180.0
    #: Crash handling: restart dead workers (same name, new generation)
    #: up to ``max_restarts`` times each.
    restart: bool = True
    max_restarts: int = 3
    #: Forwarded to the workers' registries (PR-9 warmup autotuning).
    tune: bool = False
    #: Enable obs instrumentation / request telemetry inside workers.
    obs: bool = False
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.replication is not None and self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")


@dataclass
class _Handle:
    """Router-side view of one worker incarnation (event-loop-confined)."""

    name: str
    spec: WorkerSpec
    process: SpawnProcess
    chan: ControlChannel
    slab: SlabRing
    #: Resolved with the worker's ``ready`` frame (or a startup error).
    ready: asyncio.Future
    #: rid -> in-flight bookkeeping; completion pops exactly once, so a
    #: late duplicate frame (or crash fan-out racing a response) can never
    #: double-complete a future — the same pop-idempotency discipline as
    #: ``Scheduler._inflight``.
    outstanding: dict[str, dict[str, Any]] = field(default_factory=dict)
    probes: dict[str, asyncio.Future] = field(default_factory=dict)
    reader: asyncio.Task | None = None
    dispatched: int = 0


def _acquire_lease(slab: SlabRing) -> SlabLease | None:
    """Sync hop for the slab lease (its lock never blocks the loop long)."""
    return slab.acquire()


class ClusterRouter:
    """Multi-process sharded serving front end."""

    def __init__(
        self,
        models: list[ModelSpec] | tuple[ModelSpec, ...],
        config: ClusterConfig | None = None,
    ) -> None:
        if not models:
            raise ValueError("ClusterRouter needs at least one ModelSpec")
        self.models = tuple(models)
        self.config = config if config is not None else ClusterConfig()
        self.membership = Membership()
        self.ring = HashRing(vnodes=self.config.vnodes)
        self._handles: dict[str, _Handle] = {}
        self._ctx = multiprocessing.get_context("spawn")
        self._rid_seq = itertools.count(1)
        self._running = False
        self._stop_task: asyncio.Task | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._http = JsonHttpServer(self._http_dispatch)
        self._started_at = time.monotonic()
        #: Always-on router counters (event-loop-confined, like the
        #: handle tables; scraped into /v1/stats).
        self._stats: dict[str, int] = {
            "requests": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "crashes": 0,
            "restarts": 0,
            "stale_responses": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ClusterRouter":
        if self._running:
            return self
        self._running = True
        self._stop_task = None
        self._started_at = time.monotonic()
        names = [f"w{i}" for i in range(self.config.workers)]
        for name in names:
            self.ring.add(name)
        spawned = [await self._spawn(name) for name in names]
        await asyncio.gather(*(self._wait_ready(h) for h in spawned))
        self._heartbeat_task = asyncio.create_task(
            self._heartbeat_loop(), name="repro-cluster-heartbeat"
        )
        return self

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    async def _spawn(self, name: str) -> _Handle:
        """Spawn one worker incarnation and start its reader task."""
        state = self.membership.register(name)
        slab_name = f"repro-{os.getpid()}-{name}-g{state.generation}"
        slab = SlabRing.create(slab_name, self.config.slot_bytes, self.config.slots)
        spec = WorkerSpec(
            name=name,
            generation=state.generation,
            slab_name=slab_name,
            slot_bytes=self.config.slot_bytes,
            slots=self.config.slots,
            models=self.models,
            max_batch_size=self.config.max_batch_size,
            max_queue_delay_ms=self.config.max_queue_delay_ms,
            default_timeout_ms=self.config.default_timeout_ms,
            execute_threads=self.config.execute_threads,
            tune=self.config.tune,
            telemetry=self.config.telemetry,
            obs=self.config.obs,
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, spec.as_dict()),
            name=f"repro-cluster-{name}-g{state.generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _Handle(
            name=name,
            spec=spec,
            process=process,
            chan=ControlChannel(parent_conn),
            slab=slab,
            ready=asyncio.get_running_loop().create_future(),
        )
        self._handles[name] = handle
        handle.reader = asyncio.create_task(
            self._read_loop(handle), name=f"repro-cluster-read-{name}"
        )
        return handle

    async def _wait_ready(self, handle: _Handle) -> None:
        try:
            info = await asyncio.wait_for(
                asyncio.shield(handle.ready), self.config.start_timeout_s
            )
        except (TimeoutError, asyncio.TimeoutError):
            handle.process.terminate()
            raise RuntimeError(
                f"worker {handle.name} failed to become ready within "
                f"{self.config.start_timeout_s:.0f}s"
            ) from None
        self.membership.mark_ready(
            handle.name,
            pid=int(info.get("pid", 0)),
            warmup_ms=float(info.get("warmup_ms", 0.0)),
        )
        counter_add("cluster.worker.ready", worker=handle.name)

    async def stop(self) -> None:
        """Graceful drain, single-flight: concurrent/repeated stops await
        the same teardown instead of racing it (the shutdown-idempotency
        contract the mid-batch-kill regression test pins down)."""
        if not self._running and self._stop_task is None:
            return
        if self._stop_task is None:
            self._stop_task = asyncio.ensure_future(self._stop_impl())
        await asyncio.shield(self._stop_task)

    async def _stop_impl(self) -> None:
        self._running = False  # stop admitting before anything else
        await self._http.stop()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        loop = asyncio.get_running_loop()
        for handle in self._handles.values():
            self.membership.mark_draining(handle.name)
            try:
                handle.chan.send({"op": "drain"})
            except (OSError, BrokenPipeError):
                pass
        readers = [h.reader for h in self._handles.values() if h.reader is not None]
        if readers:
            # The drain flush answers in-flight requests through the
            # normal reader path; EOF then ends each reader.
            await asyncio.wait(readers, timeout=30.0)
        for handle in self._handles.values():
            await loop.run_in_executor(None, handle.process.join, 10.0)
            if handle.process.is_alive():
                handle.process.terminate()
                await loop.run_in_executor(None, handle.process.join, 10.0)
            self._fail_outstanding(handle, ServiceStopped("cluster stopped"))
            handle.chan.close()
            handle.slab.close()
            handle.slab.unlink()

    # -- request path --------------------------------------------------------

    async def infer(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout_ms: float | None | object = "default",
        trace: TraceContext | None = None,
    ) -> np.ndarray:
        """Route one request to its shard and await the slab-borne answer."""
        if not self._running:
            raise ServiceStopped("cluster router is not running")
        if trace is None and telemetry.enabled():
            cur = telemetry.current()
            trace = cur.child() if cur is not None else telemetry.start_trace()
        arr = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        if arr.nbytes > self.config.slot_bytes:
            raise BadRequest(
                f"request tensor of {arr.nbytes} bytes exceeds the cluster slab "
                f"slot size {self.config.slot_bytes}"
            )
        handle, lease = self._place(model)
        meta = handle.slab.write(lease.slot, arr)
        rid = f"r{next(self._rid_seq)}"
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        t0 = time.monotonic()
        handle.outstanding[rid] = {
            "future": future,
            "lease": lease,
            "trace": trace,
            "model": model,
            "t0": t0,
        }
        handle.dispatched += 1
        self._stats["requests"] += 1
        msg: dict[str, Any] = {
            "op": "req",
            "rid": rid,
            "model": model,
            "slot": lease.slot,
            "tag": lease.tag,
            "timeout_ms": timeout_ms,
            **meta,
        }
        if trace is not None:
            msg["traceparent"] = trace.traceparent()
        try:
            handle.chan.send(msg)
        except (OSError, BrokenPipeError) as exc:
            handle.outstanding.pop(rid, None)
            handle.slab.release(lease)
            raise WorkerCrashed(
                f"worker {handle.name} pipe is gone: {exc}"
            ) from exc
        counter_add("cluster.dispatched", model=model, worker=handle.name)
        # Safety net over the worker's own deadline enforcement: if the
        # response frame is lost (worker wedged mid-reply), fail the
        # request rather than hanging forever.
        cap = self._deadline_cap(timeout_ms)
        try:
            if cap is None:
                return await future
            return await asyncio.wait_for(asyncio.shield(future), cap)
        except (TimeoutError, asyncio.TimeoutError):
            pending = handle.outstanding.pop(rid, None)
            if pending is not None:
                handle.slab.release(lease)
                self._stats["failed"] += 1
            raise DeadlineExceeded(
                f"no response from worker {handle.name} within {cap:.1f}s"
            ) from None

    def _deadline_cap(self, timeout_ms: float | None | object) -> float | None:
        if timeout_ms == "default":
            timeout_ms = self.config.default_timeout_ms
        if timeout_ms is None:
            return None
        return float(timeout_ms) / 1e3 + 30.0  # type: ignore[arg-type]

    def _place(self, model: str) -> tuple[_Handle, SlabLease]:
        """Shard + least-outstanding pick + slab lease, in one pass.

        Candidates are tried in ascending outstanding order, so slab
        exhaustion on the least-loaded worker falls through to the next
        replica instead of rejecting outright.
        """
        ready = self.membership.ready_names()
        if not ready:
            raise ServiceStopped("no ready workers")
        width = self.config.replication or len(ready)
        shard = [
            name
            for name in self.ring.shard(model, min(width, len(self.ring)))
            if name in ready
        ]
        if not shard:
            shard = ready  # whole shard down: serve from anywhere
        shard.sort(key=lambda name: len(self._handles[name].outstanding))
        for name in shard:
            handle = self._handles[name]
            lease = _acquire_lease(handle.slab)
            if lease is not None:
                return handle, lease
        self._stats["rejected"] += 1
        counter_add("cluster.rejected", model=model)
        raise QueueFull(
            f"all {len(shard)} shard slabs exhausted "
            f"({self.config.slots} slots each); retry later"
        )

    # -- worker frames -------------------------------------------------------

    async def _read_loop(self, handle: _Handle) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                msg = await loop.run_in_executor(None, handle.chan.recv)
            except (EOFError, OSError):
                break
            try:
                self._on_frame(handle, msg)
            except Exception:  # noqa: B902 - a bad frame must not kill the reader
                counter_add("cluster.bad_frames", worker=handle.name)
        await self._reap(handle)

    def _on_frame(self, handle: _Handle, msg: dict[str, Any]) -> None:
        op = msg.get("op")
        if op == "res" or op == "err":
            self._on_response(handle, msg)
        elif op == "pong":
            if int(msg.get("generation", -1)) == handle.spec.generation:
                self.membership.heartbeat(handle.name)
        elif op == "ready":
            if not handle.ready.done():
                handle.ready.set_result(msg)
        elif op == "fatal":
            if not handle.ready.done():
                handle.ready.set_exception(
                    RuntimeError(
                        f"worker {handle.name} failed to start: {msg.get('error')}"
                    )
                )
        elif op in ("scrape_reply", "stats_reply"):
            fut = handle.probes.pop(op, None)
            if fut is not None and not fut.done():
                fut.set_result(msg)
        elif op == "bye":
            self.membership.mark_draining(handle.name)

    def _on_response(self, handle: _Handle, msg: dict[str, Any]) -> None:
        rid = str(msg.get("rid"))
        pending = handle.outstanding.pop(rid, None)
        if pending is None:
            # Already failed (crash fan-out, router timeout) — a late or
            # duplicate frame completes nothing.
            self._stats["stale_responses"] += 1
            return
        lease: SlabLease = pending["lease"]
        future: asyncio.Future = pending["future"]
        trace: TraceContext | None = pending["trace"]
        if not handle.slab.lease_valid(lease.slot, int(msg.get("tag", -1))):
            # The generation/tag gate: never read a slot this response does
            # not currently own.
            self._stats["stale_responses"] += 1
            counter_add("cluster.stale_responses", worker=handle.name)
            if not future.done():
                future.set_exception(
                    WorkerCrashed(f"stale slab lease on worker {handle.name}")
                )
            return
        now = time.monotonic()
        if trace is not None:
            self._record_worker_spans(trace, msg.get("spans", ()), handle.name)
            telemetry.record_span(
                "cluster.request", trace, pending["t0"], now, root=True,
                worker=handle.name, model=pending["model"], rid=rid,
            )
        if msg["op"] == "err":
            exc_cls = _ERROR_KINDS.get(str(msg.get("kind")), ServeError)
            handle.slab.release(lease)
            self._stats["failed"] += 1
            counter_add("cluster.errors", worker=handle.name, kind=str(msg.get("kind")))
            if not future.done():
                future.set_exception(exc_cls(str(msg.get("error", "worker error"))))
            return
        out = handle.slab.read(lease.slot, msg["shape"], msg["dtype"])
        handle.slab.release(lease)
        self._stats["completed"] += 1
        latency_ms = (now - pending["t0"]) * 1e3
        counter_add("cluster.completed", model=pending["model"], worker=handle.name)
        gauge_set("cluster.last_latency_ms", latency_ms, worker=handle.name)
        if not future.done():
            future.set_result(out)

    def _record_worker_spans(
        self, ctx: TraceContext, spans: Any, worker: str
    ) -> None:
        """Merge worker-recorded spans into the router's trace store.

        Worker roots (``parent_id`` None) are re-parented under the
        router's request span, so the merged tree reads router → worker →
        scheduler → runtime in one piece; Linux ``CLOCK_MONOTONIC`` is
        system-wide, so the shipped timestamps align without adjustment.
        """
        if not telemetry.enabled() or not isinstance(spans, list):
            return
        store = telemetry.get_store()
        for d in spans:
            try:
                start_s = float(d["start_s"])
                store.record(
                    TraceSpan(
                        name=str(d["name"]),
                        trace_id=str(d["trace_id"]),
                        span_id=str(d["span_id"]),
                        parent_id=d.get("parent_id") or ctx.span_id,
                        start_s=start_s,
                        end_s=start_s + float(d.get("duration_ms", 0.0)) / 1e3,
                        attrs=dict(d.get("attrs", ())),
                        thread=f"{worker}:{d.get('thread', '')}",
                        links=[tuple(link) for link in d.get("links", ())],
                    )
                )
            except (KeyError, TypeError, ValueError):
                continue

    # -- failure handling ----------------------------------------------------

    def _fail_outstanding(self, handle: _Handle, exc: ServeError) -> None:
        for rid, pending in list(handle.outstanding.items()):
            handle.outstanding.pop(rid, None)
            future: asyncio.Future = pending["future"]
            if not future.done():
                future.set_exception(exc)
        # Leases die with the slab; the segment is closed/unlinked by the
        # caller, so no per-lease release is needed here.

    async def _reap(self, handle: _Handle) -> None:
        """Reader hit EOF: worker exited.  Crash path unless stopping."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, handle.process.join, 10.0)
        if not self._running:
            self._fail_outstanding(handle, ServiceStopped("cluster stopped"))
            return
        fresh = self.membership.mark_dead(handle.name)
        self._fail_outstanding(
            handle,
            WorkerCrashed(
                f"worker {handle.name} (gen {handle.spec.generation}) died "
                f"with exit code {handle.process.exitcode}"
            ),
        )
        handle.chan.close()
        handle.slab.close()
        handle.slab.unlink()
        if not fresh:
            return
        self._stats["crashes"] += 1
        counter_add("cluster.worker.crashes", worker=handle.name)
        if not self.config.restart:
            return
        if self.membership.generation_of(handle.name) > self.config.max_restarts:
            counter_add("cluster.worker.abandoned", worker=handle.name)
            return
        try:
            replacement = await self._spawn(handle.name)
            await self._wait_ready(replacement)
            self._stats["restarts"] += 1
            counter_add("cluster.worker.restarts", worker=handle.name)
        except Exception:  # noqa: B902 - a failed restart leaves the worker dead
            self.membership.mark_dead(handle.name)

    async def _heartbeat_loop(self) -> None:
        cfg = self.config
        while self._running:
            await asyncio.sleep(cfg.heartbeat_interval_s)
            now = time.monotonic()
            for name in self.membership.ready_names():
                handle = self._handles.get(name)
                if handle is None:
                    continue
                try:
                    handle.chan.send({"op": "ping", "t": now})
                except (OSError, BrokenPipeError):
                    pass  # EOF on the reader will reap it
            for name in self.membership.stale(cfg.heartbeat_timeout_s):
                # Hung (alive but silent): terminate, which funnels it into
                # the reader's EOF -> crash -> restart path.
                handle = self._handles.get(name)
                if handle is not None and handle.process.is_alive():
                    counter_add("cluster.worker.hung", worker=name)
                    handle.process.terminate()

    # -- test hooks ----------------------------------------------------------

    def crash_worker(self, name: str) -> None:
        """Test hook: make ``name`` die instantly (``os._exit`` in-process)."""
        handle = self._handles[name]
        try:
            handle.chan.send({"op": "crash"})
        except (OSError, BrokenPipeError):
            pass

    def kill_worker(self, name: str) -> None:
        """Test hook: SIGKILL ``name`` (mid-batch, no goodbye)."""
        self._handles[name].process.kill()

    def worker_for(self, model: str) -> str:
        """The worker a request for ``model`` routes to right now."""
        handle, lease = self._place(model)
        handle.slab.release(lease)
        return handle.name

    # -- observability -------------------------------------------------------

    async def _probe(
        self, handle: _Handle, op: str, reply_op: str, timeout_s: float = 10.0
    ) -> dict[str, Any] | None:
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        handle.probes[reply_op] = fut
        try:
            handle.chan.send({"op": op})
        except (OSError, BrokenPipeError):
            handle.probes.pop(reply_op, None)
            return None
        try:
            return await asyncio.wait_for(asyncio.shield(fut), timeout_s)
        except (TimeoutError, asyncio.TimeoutError):
            return None
        finally:
            if handle.probes.get(reply_op) is fut:
                handle.probes.pop(reply_op, None)

    async def stats(self) -> dict[str, Any]:
        """Aggregated ``/v1/stats``: router + membership + every worker."""
        ready = self.membership.ready_names()
        replies = await asyncio.gather(
            *(
                self._probe(self._handles[name], "stats", "stats_reply")
                for name in ready
            )
        )
        workers: dict[str, Any] = {}
        control: dict[str, Any] = {}
        for name, reply in zip(ready, replies):
            if reply is None:
                continue
            workers[name] = reply.get("stats", {})
            control[name] = reply.get("control", {})
            control[name]["router_side"] = self._handles[name].chan.stats.as_dict()
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "router": dict(self._stats),
            "membership": self.membership.snapshot(),
            "ring": {"workers": self.ring.nodes(), "vnodes": self.config.vnodes},
            "outstanding": {
                name: len(h.outstanding) for name, h in self._handles.items()
            },
            "slabs": {
                name: {"free_slots": h.slab.free_slots(), "slots": h.slab.slots}
                for name, h in self._handles.items()
            },
            "workers": workers,
            "control": control,
        }

    async def render_metrics(self) -> str:
        """Aggregated ``/metrics``: every worker's scrape + the router's own
        registry, merged under a ``worker`` label into one exposition."""
        ready = self.membership.ready_names()
        replies = await asyncio.gather(
            *(
                self._probe(self._handles[name], "scrape", "scrape_reply")
                for name in ready
            )
        )
        merged = MetricsRegistry()
        sources: list[tuple[str, dict[str, Any]]] = [
            ("router", get_registry().as_dict())
        ]
        for name, reply in zip(ready, replies):
            if reply is not None:
                sources.append((name, reply.get("metrics", {})))
        for worker, metrics in sources:
            self._merge_worker_metrics(merged, worker, metrics)
        return render_prometheus(merged)

    @staticmethod
    def _merge_worker_metrics(
        merged: MetricsRegistry, worker: str, metrics: dict[str, Any]
    ) -> None:
        for name, m in sorted(metrics.items()):
            kind = m.get("kind")
            for entry in m.get("values", ()):
                labels = {**entry.get("labels", {}), "worker": worker}
                value = entry.get("value")
                try:
                    if kind == "counter":
                        merged.counter(name, m.get("help", "")).inc(
                            float(value), **labels
                        )
                    elif kind == "gauge":
                        merged.gauge(name, m.get("help", "")).set(
                            float(value), **labels
                        )
                    elif isinstance(value, dict):
                        # Histogram summaries flatten to stat gauges: the
                        # cross-process exposition keeps count/sum/min/max
                        # (quantile merging across processes would need the
                        # raw buckets, which scrape replies don't ship).
                        for stat in ("count", "sum", "min", "max"):
                            if stat in value:
                                merged.gauge(f"{name}.{stat}", m.get("help", "")).set(
                                    float(value[stat]), **labels
                                )
                except (TypeError, ValueError):
                    continue

    def describe_models(self) -> list[dict[str, Any]]:
        return [spec.as_dict() for spec in self.models]

    # -- HTTP front end ------------------------------------------------------

    async def serve_http(self, host: str = "127.0.0.1", port: int = 8707) -> tuple[str, int]:
        """Start the aggregated HTTP endpoint; returns the bound address.

        Same route surface as the single-process service, but ``/metrics``
        and ``/v1/stats`` merge every worker's scrape under a ``worker``
        label and ``POST /v1/infer`` routes through the shard fan-out.
        """
        return await self._http.start(host, port)

    async def _http_dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, Any] | str, dict[str, str]]:
        try:
            if method == "GET" and path == "/healthz":
                ready = self.membership.ready_names()
                status = 200 if ready else 503
                return status, {
                    "status": "ok" if ready else "degraded",
                    "ready_workers": ready,
                    "workers": len(self.membership),
                }, {}
            if method == "GET" and path == "/metrics":
                return 200, await self.render_metrics(), {
                    "content-type": PROMETHEUS_CONTENT_TYPE
                }
            if method == "GET" and path == "/v1/stats":
                return 200, await self.stats(), {}
            if method == "GET" and path == "/v1/models":
                return 200, {"models": self.describe_models()}, {}
            if method == "POST" and path == "/v1/infer":
                return await handle_infer_request(self.infer, headers, body)
            return 404, {"error": f"no route {method} {path}"}, {}
        except ServeError as exc:
            return exc.http_status, {"error": str(exc), "kind": type(exc).__name__}, {}
        except Exception as exc:  # noqa: B902 - last-resort 500, never a hang
            return 500, {"error": str(exc), "kind": type(exc).__name__}, {}
