"""Shared-memory slab ring: the cluster's zero-serialisation tensor lane.

One :class:`SlabRing` per worker *incarnation*: a single
``multiprocessing.shared_memory`` segment divided into fixed-size slots.
The router leases a slot, copies the request tensor in, and sends only
``(slot, tag, shape, dtype)`` over the control pipe; the worker reads the
rows out, runs the batch, writes the response back into the **same slot**
and echoes the lease tag.  Two mechanisms make stale reads structurally
impossible rather than merely unlikely:

* **generation-named segments** — the segment name embeds the worker's
  incarnation (``...-g<generation>``, assigned by the router).  A
  restarted worker attaches to a *fresh* segment; whatever a crashed
  predecessor might still write lands in a segment nobody routes to, and
  is unlinked by the router.  There is no name under which an old
  incarnation and a new one can meet.
* **monotonic lease tags** — every acquire stamps the slot with a fresh
  tag, echoed back in the worker's response.  A response whose tag does
  not match the slot's *current* lease (a reply outrunning its timeout,
  say, after the slot was re-leased) is discarded at validation instead
  of being read as another request's answer.

The free-list and tag table are lock-guarded (registered in the PR-8
guarded-by inventory): the router's event loop leases while test drivers
and witness threads probe concurrently.  The slab *data* copies
deliberately happen outside the lock — ``read``/``write`` touch only the
mapped buffer, so a lease held during a long copy never blocks other
slots' turnover.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["SlabLease", "SlabRing"]


@dataclass(frozen=True)
class SlabLease:
    """One leased slot: index plus the tag responses must echo."""

    slot: int
    tag: int


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    The attaching side must not register the segment with its resource
    tracker: the router owns the unlink, and a tracker that believes it
    owns the mapping unlinks it again at interpreter exit (KeyError noise
    on 3.12, double-unlink races earlier).  Python 3.13 grew ``track=``;
    on older interpreters the registration is reversed by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        return shm


class SlabRing:
    """Fixed-slot shared-memory ring with monotonic lease tags."""

    def __init__(
        self, name: str, slot_bytes: int, slots: int, *, create: bool
    ) -> None:
        if slot_bytes < 1 or slots < 1:
            raise ValueError(
                f"slot_bytes and slots must be >= 1, got {slot_bytes}, {slots}"
            )
        self.name = name
        self.slot_bytes = slot_bytes
        self.slots = slots
        self.owner = create
        if create:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=slot_bytes * slots
            )
        else:
            self._shm = _attach_untracked(name)
        self._lock = threading.Lock()
        self._free: list[int] = list(range(slots))
        self._tags: list[int] = [0] * slots
        self._next_tag = 1
        self._closed = False

    @classmethod
    def create(cls, name: str, slot_bytes: int, slots: int) -> "SlabRing":
        return cls(name, slot_bytes, slots, create=True)

    @classmethod
    def attach(cls, name: str, slot_bytes: int, slots: int) -> "SlabRing":
        return cls(name, slot_bytes, slots, create=False)

    # -- lease protocol ------------------------------------------------------

    def acquire(self) -> SlabLease | None:
        """Lease one free slot with a fresh tag; ``None`` when exhausted."""
        with self._lock:
            if self._closed or not self._free:
                return None
            slot = self._free.pop()
            tag = self._next_tag
            self._next_tag += 1
            self._tags[slot] = tag
        return SlabLease(slot=slot, tag=tag)

    def release(self, lease: SlabLease) -> None:
        """Return a leased slot to the free list (stale releases are no-ops)."""
        with self._lock:
            if self._closed or self._tags[lease.slot] != lease.tag:
                return
            self._tags[lease.slot] = 0
            self._free.append(lease.slot)

    def lease_valid(self, slot: int, tag: int) -> bool:
        """Whether ``tag`` is the slot's *current* lease (response gate)."""
        if not 0 <= slot < self.slots:
            return False
        with self._lock:
            return not self._closed and self._tags[slot] == tag

    def free_slots(self) -> int:
        with self._lock:
            return len(self._free)

    # -- tensor copies (outside the lock by design) --------------------------

    def write(self, slot: int, arr: np.ndarray) -> dict[str, object]:
        """Copy ``arr`` into ``slot``; returns the wire metadata."""
        arr = np.ascontiguousarray(arr)
        self._check(slot, arr.nbytes)
        dst: np.ndarray = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=self._shm.buf,
            offset=slot * self.slot_bytes,
        )
        np.copyto(dst, arr)
        return {"shape": list(arr.shape), "dtype": str(arr.dtype)}

    def read(self, slot: int, shape: list[int] | tuple[int, ...], dtype: str) -> np.ndarray:
        """Copy a tensor described by wire metadata out of ``slot``."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        self._check(slot, nbytes)
        src: np.ndarray = np.ndarray(
            tuple(int(d) for d in shape), dtype=dt, buffer=self._shm.buf,
            offset=slot * self.slot_bytes,
        )
        return src.copy()

    def _check(self, slot: int, nbytes: int) -> None:
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range [0, {self.slots})")
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"tensor of {nbytes} bytes exceeds slot capacity {self.slot_bytes}"
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment (idempotent); leases become invalid."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._free.clear()
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner side, after close)."""
        # Spawned workers share the parent's resource-tracker daemon (the
        # tracker fd rides in the spawn preparation data), so the attach
        # side's compensating unregister (see ``_attach_untracked``) also
        # removed *our* entry from the shared cache.  Re-register first so
        # the unregister inside ``SharedMemory.unlink`` always balances —
        # registration is a set-add, so this is a no-op where the entry
        # survived (3.13+ ``track=False`` attach).
        try:
            resource_tracker.register(self._shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
