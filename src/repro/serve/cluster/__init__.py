"""repro.serve.cluster — multi-worker sharded serving.

The process fan-out tier over :mod:`repro.serve`: N spawned worker
processes, each a complete warmed single-process serving stack (its own
:class:`~repro.serve.registry.ModelRegistry` + dynamic batcher), behind a
:class:`ClusterRouter` that

* **shards by model** via consistent hashing (:class:`HashRing`, virtual
  nodes, ~1/N remap per membership change),
* **load-balances** within a shard by least outstanding requests,
* **hands tensors off through shared memory** (:class:`SlabRing`) — the
  control pipe carries only signature metadata, never activation bytes
  (the Indirect-Convolution discipline applied to serving), with
  generation-named segments + monotonic lease tags making stale reads
  structurally impossible,
* **survives crashes**: heartbeat health checks, pipe-EOF crash
  detection, restart with re-warm under the same ring name.

Sixty-second tour::

    import asyncio
    import numpy as np
    from repro.serve.cluster import ClusterConfig, ClusterRouter, ModelSpec

    async def main():
        router = ClusterRouter(
            [ModelSpec(name="resnet18", arch="resnet18", width_mult=0.25)],
            ClusterConfig(workers=2),
        )
        async with router:  # spawn + warm + ready barrier
            y = await router.infer(
                "resnet18", np.zeros((32, 32, 3), np.float32)
            )
            print(y.shape, (await router.stats())["router"])

    asyncio.run(main())

Responses are bit-identical to single-process serving (the shared
:data:`~repro.serve.registry.MIN_EXECUTE_ROWS` padding floor makes every
row's arithmetic batch-composition-independent, and each worker runs the
same warmed runtime) — asserted end-to-end in ``tests/test_cluster_serving.py``.
"""

from .hashring import HashRing
from .membership import Membership, WorkerState
from .messages import ControlChannel, ControlStats
from .router import ClusterConfig, ClusterRouter
from .shm import SlabLease, SlabRing
from .worker import ModelSpec, WorkerSpec, worker_main

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ControlChannel",
    "ControlStats",
    "HashRing",
    "Membership",
    "ModelSpec",
    "SlabLease",
    "SlabRing",
    "WorkerSpec",
    "WorkerState",
    "worker_main",
]
