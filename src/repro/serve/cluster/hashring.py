"""Consistent hashing with virtual nodes: deterministic model -> shard placement.

The router shards requests **by model name**: every request for one model
lands on the same small set of workers (its *shard*), so each worker's
:class:`~repro.runtime.cache.ExecutableCache` and filter-transform caches
stay hot for the models it actually serves — the process-level analogue of
the paper's tile-to-SM mapping, where work units are bound to compute
units deterministically instead of scattered.

Plain modulo hashing would remap almost every model when the worker count
changes (one restart = every cache cold).  A consistent-hash ring with
virtual nodes remaps only ~``1/N`` of the key space per membership change:

* each worker contributes ``vnodes`` points on a 64-bit ring, positioned
  by ``sha1(f"{node}#{i}")`` — deterministic across processes and runs (no
  Python hash randomisation);
* a key routes to the first point clockwise from ``sha1(key)``;
* :meth:`HashRing.shard` walks clockwise collecting ``count`` *distinct*
  workers — the replica set the router load-balances within.

The ring itself is pure data (no locks, no I/O): the router mutates it
only from its event loop, and tests drive it directly to assert the
remap-fraction bound.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(key: str) -> int:
    """Deterministic 64-bit ring position of ``key``."""
    return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over named nodes with virtual points."""

    def __init__(self, nodes: tuple[str, ...] | list[str] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        #: Sorted (position, node) points and the parallel position list
        #: ``bisect`` searches.  Rebuilt on membership change — membership
        #: changes are rare, lookups are per-request.
        self._ring: list[tuple[int, str]] = []
        self._points: list[int] = []
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------------

    def add(self, node: str) -> None:
        """Add ``node``; idempotent."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove ``node``; idempotent."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._rebuild()

    def _rebuild(self) -> None:
        self._ring = sorted(
            (_point(f"{node}#{i}"), node)
            for node in self._nodes
            for i in range(self.vnodes)
        )
        self._points = [p for p, _ in self._ring]

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- lookup --------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first ring point clockwise)."""
        if not self._ring:
            raise LookupError("hash ring is empty")
        idx = bisect.bisect_right(self._points, _point(key)) % len(self._ring)
        return self._ring[idx][1]

    def shard(self, key: str, count: int) -> list[str]:
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        The replica set for ``key``: the owner first, then the next
        distinct nodes around the ring.  ``count`` larger than the
        membership returns every node (owner-first order).
        """
        if not self._ring:
            raise LookupError("hash ring is empty")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        start = bisect.bisect_right(self._points, _point(key)) % len(self._ring)
        out: list[str] = []
        for offset in range(len(self._ring)):
            node = self._ring[(start + offset) % len(self._ring)][1]
            if node not in out:
                out.append(node)
                if len(out) == count:
                    break
        return out

    def assignments(self, keys: list[str]) -> dict[str, str]:
        """``{key: owner}`` for a key population (remap-stability tests)."""
        return {key: self.node_for(key) for key in keys}
