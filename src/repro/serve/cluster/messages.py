"""Control-plane codec: JSON-only frames over a multiprocessing pipe.

The cluster's hot-path discipline (the Indirect-Convolution lesson from
PAPERS.md applied to serving): **activation bytes never cross the control
pipe**.  Tensors travel through the shared-memory slab ring
(:mod:`repro.serve.cluster.shm`); the pipe carries only signature
metadata — model name, slot index, lease tag, shape, dtype — a couple
hundred bytes per request regardless of tensor size, the way im2col-
Winograd's fused gather carries indices instead of re-materialised
patches.

:class:`ControlChannel` enforces that structurally: frames are encoded
with strict :func:`json.dumps`, which *refuses* ``ndarray`` (or any other
binary payload) with a ``TypeError`` — a pickle codec would happily
serialise the tensor and silently re-introduce the copy the slab ring
exists to avoid.  Every frame's size is accounted
(:class:`ControlStats`), so the ``cluster-smoke`` bench can assert the
pickle-free property as a number: the largest control frame ever sent
must be smaller than a single activation row.

Thread contract: one sender thread and one receiver thread per channel
end.  The router sends from its event loop and receives from a dedicated
reader hop; the worker does the reverse.  Each stats field is written by
exactly one of those threads, so the counters need no lock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Any

__all__ = ["ControlStats", "ControlChannel"]


@dataclass
class ControlStats:
    """Byte/frame accounting of one channel end (see module thread contract)."""

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Largest single frame seen in either direction — the number the
    #: pickle-free bench metric compares against one activation row.
    max_frame_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "max_frame_bytes": self.max_frame_bytes,
        }


class ControlChannel:
    """JSON-frames-only wrapper over one end of a duplex pipe."""

    def __init__(self, conn: Connection) -> None:
        self._conn = conn
        self.stats = ControlStats()

    def send(self, msg: dict[str, Any], *, lenient: bool = False) -> int:
        """Encode and send one frame; returns its size in bytes.

        Strict by default: any non-JSON value (an ``ndarray`` above all)
        raises ``TypeError`` instead of being serialised — the structural
        pickle-free guarantee.  ``lenient=True`` stringifies unknown
        types and is reserved for the *stats/scrape* replies, which carry
        introspection blobs, never tensors and never request traffic.
        """
        data = json.dumps(
            msg, separators=(",", ":"), default=str if lenient else None
        ).encode()
        self._conn.send_bytes(data)
        st = self.stats
        st.frames_sent += 1
        st.bytes_sent += len(data)
        st.max_frame_bytes = max(st.max_frame_bytes, len(data))
        return len(data)

    def recv(self) -> dict[str, Any]:
        """Block for one frame and decode it (raises ``EOFError`` on hangup)."""
        data = self._conn.recv_bytes()
        st = self.stats
        st.frames_received += 1
        st.bytes_received += len(data)
        st.max_frame_bytes = max(st.max_frame_bytes, len(data))
        msg = json.loads(data)
        if not isinstance(msg, dict):
            raise ValueError(f"control frame must be a JSON object, got {type(msg)}")
        return msg

    def poll(self, timeout: float = 0.0) -> bool:
        return self._conn.poll(timeout)

    def close(self) -> None:
        self._conn.close()

    def fileno(self) -> int:
        return self._conn.fileno()
