"""Cluster membership: the worker table health checks and routing consult.

One :class:`Membership` per router: worker name -> :class:`WorkerState`
(lifecycle state, generation, heartbeat timestamps, restart count).  The
table is the single source of truth for "which workers may receive
requests right now" — the ring (:mod:`.hashring`) answers *where a model
belongs*, membership filters that shard down to workers that are actually
``ready``.

States move ``starting -> ready -> (draining | dead)``; a restart takes a
``dead`` worker back through ``starting`` with its generation bumped (the
slab-segment name changes with it, see :mod:`.shm`).  Worker *names* are
stable across restarts, so the ring never changes on a crash — placement
is deterministic and only true membership changes (scaling the worker
count) remap keys.

The table is lock-guarded and registered in the PR-8 guarded-by
inventory: the router's event loop mutates it while the heartbeat loop,
stats probes and witness-test threads read concurrently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["WorkerState", "Membership"]

#: Lifecycle states a worker moves through.
STATES = ("starting", "ready", "draining", "dead")


@dataclass
class WorkerState:
    """One worker's membership record (mutated only under the table lock)."""

    name: str
    generation: int = 1
    state: str = "starting"
    pid: int | None = None
    started_at_s: float = field(default_factory=time.monotonic)
    last_heartbeat_s: float = field(default_factory=time.monotonic)
    restarts: int = 0
    warmup_ms: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "generation": self.generation,
            "state": self.state,
            "pid": self.pid,
            "restarts": self.restarts,
            "warmup_ms": self.warmup_ms,
            "heartbeat_age_s": time.monotonic() - self.last_heartbeat_s,
        }


class Membership:
    """Thread-safe worker table with heartbeat bookkeeping."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerState] = {}

    # -- lifecycle transitions ----------------------------------------------

    def register(self, name: str) -> WorkerState:
        """Add (or reset to a fresh incarnation of) worker ``name``."""
        now = time.monotonic()
        with self._lock:
            state = self._workers.get(name)
            if state is None:
                state = WorkerState(name=name)
                self._workers[name] = state
            else:
                state.generation += 1
                state.restarts += 1
                state.state = "starting"
                state.started_at_s = now
            state.last_heartbeat_s = now
            state.pid = None
            return state

    def mark_ready(self, name: str, *, pid: int, warmup_ms: float = 0.0) -> None:
        with self._lock:
            state = self._workers[name]
            state.state = "ready"
            state.pid = pid
            state.warmup_ms = warmup_ms
            state.last_heartbeat_s = time.monotonic()

    def mark_draining(self, name: str) -> None:
        with self._lock:
            self._workers[name].state = "draining"

    def mark_dead(self, name: str) -> bool:
        """Transition to ``dead``; returns False if it already was."""
        with self._lock:
            state = self._workers[name]
            was_dead = state.state == "dead"
            state.state = "dead"
            return not was_dead

    def heartbeat(self, name: str) -> None:
        """Record a pong from ``name`` (unknown names are ignored)."""
        with self._lock:
            state = self._workers.get(name)
            if state is not None:
                state.last_heartbeat_s = time.monotonic()

    # -- queries -------------------------------------------------------------

    def state_of(self, name: str) -> str:
        with self._lock:
            return self._workers[name].state

    def generation_of(self, name: str) -> int:
        with self._lock:
            return self._workers[name].generation

    def ready_names(self) -> list[str]:
        with self._lock:
            return sorted(
                name for name, s in self._workers.items() if s.state == "ready"
            )

    def stale(self, deadline_s: float) -> list[str]:
        """Ready workers whose last heartbeat is older than ``deadline_s``."""
        horizon = time.monotonic() - deadline_s
        with self._lock:
            return sorted(
                name
                for name, s in self._workers.items()
                if s.state == "ready" and s.last_heartbeat_s < horizon
            )

    def snapshot(self) -> list[dict[str, object]]:
        with self._lock:
            return [self._workers[name].as_dict() for name in sorted(self._workers)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._workers
