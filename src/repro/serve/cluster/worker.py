"""Worker process: one warmed single-process serving stack behind a pipe.

Each worker is a *complete* PR-5 serving stack — its own
:class:`~repro.serve.registry.ModelRegistry` (warmed, optionally
``tune=True``-searched) feeding its own
:class:`~repro.serve.service.InferenceService` with dynamic batching —
wrapped in a control loop that speaks the cluster protocol:

* startup (in the spawned child, before the event loop): build + warm the
  registry for the worker's model specs, attach the generation-named slab
  (:mod:`.shm`), then report ``ready`` with the measured warmup cost;
* ``req`` frames: read the tensor out of the leased slab slot, submit it
  to the *local* batcher, write the response back into the **same slot**
  and echo the lease tag — each request runs as its own asyncio task so
  the worker's dynamic batching coalesces concurrent requests exactly as
  the single-process service does (bit-identity relies on the shared
  :data:`~repro.serve.registry.MIN_EXECUTE_ROWS` padding floor, which
  makes every row's arithmetic independent of batch composition);
* ``ping``/``scrape``/``stats``: health + observability probes;
* ``drain``: stop admitting, flush in-flight batches, answer ``bye``;
* ``crash``: test hook — die instantly (``os._exit``), the way a real
  segfault would, so lifecycle tests exercise the router's heartbeat
  detection and restart path without faking anything.

Telemetry survives the hop: a ``req`` frame may carry the router's
``traceparent``; the worker continues that trace through its scheduler and
ships the request's recorded spans back in the ``res`` frame (Linux
``CLOCK_MONOTONIC`` is system-wide, so worker span timestamps line up with
router spans in one merged tree).

Pipe discipline: the control connection is received blocking via
``run_in_executor`` (never on the event loop), and **all** sends happen on
the event-loop thread — request tasks and the control loop interleave
their frames there, so no send lock is needed.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Any

from ...obs import telemetry
from ...obs import tracer as obs_tracer
from ...obs.metrics import get_registry
from ..batching import BatchPolicy
from ..errors import ServeError
from ..registry import ModelRegistry
from ..scheduler import SchedulerConfig
from ..service import InferenceService
from .messages import ControlChannel
from .shm import SlabRing

__all__ = ["ModelSpec", "WorkerSpec", "worker_main"]

#: Exit code of the ``crash`` test hook — distinguishable from a clean 0
#: and from Python's generic 1 in lifecycle assertions.
CRASH_EXIT_CODE = 42


@dataclass(frozen=True)
class ModelSpec:
    """One model a worker must register at startup (JSON-able)."""

    name: str
    arch: str | None = None
    image: int = 32
    in_channels: int = 3
    classes: int = 10
    width_mult: float = 1.0
    engine: str = "winograd"
    seed: int = 0
    extra_images: tuple[int, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "arch": self.arch,
            "image": self.image,
            "in_channels": self.in_channels,
            "classes": self.classes,
            "width_mult": self.width_mult,
            "engine": self.engine,
            "seed": self.seed,
            "extra_images": list(self.extra_images),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ModelSpec":
        return cls(
            name=str(d["name"]),
            arch=d.get("arch"),
            image=int(d.get("image", 32)),
            in_channels=int(d.get("in_channels", 3)),
            classes=int(d.get("classes", 10)),
            width_mult=float(d.get("width_mult", 1.0)),
            engine=str(d.get("engine", "winograd")),
            seed=int(d.get("seed", 0)),
            extra_images=tuple(int(v) for v in d.get("extra_images", ())),
        )


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs to come up (JSON-able).

    The spec crosses the process boundary as a plain dict (spawn pickles
    only primitives + the Connection), so a restarted worker is a pure
    function of its spec — same models, same warmup, same tuned dispatch —
    which is what makes post-restart bit-identity testable.
    """

    name: str
    generation: int
    slab_name: str
    slot_bytes: int
    slots: int
    models: tuple[ModelSpec, ...] = ()
    max_batch_size: int = 8
    max_queue_delay_ms: float = 2.0
    default_timeout_ms: float | None = 1000.0
    execute_threads: int = 1
    tune: bool = False
    telemetry: bool = False
    obs: bool = False
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "generation": self.generation,
            "slab_name": self.slab_name,
            "slot_bytes": self.slot_bytes,
            "slots": self.slots,
            "models": [m.as_dict() for m in self.models],
            "max_batch_size": self.max_batch_size,
            "max_queue_delay_ms": self.max_queue_delay_ms,
            "default_timeout_ms": self.default_timeout_ms,
            "execute_threads": self.execute_threads,
            "tune": self.tune,
            "telemetry": self.telemetry,
            "obs": self.obs,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "WorkerSpec":
        timeout = d.get("default_timeout_ms", 1000.0)
        return cls(
            name=str(d["name"]),
            generation=int(d["generation"]),
            slab_name=str(d["slab_name"]),
            slot_bytes=int(d["slot_bytes"]),
            slots=int(d["slots"]),
            models=tuple(ModelSpec.from_dict(m) for m in d.get("models", ())),
            max_batch_size=int(d.get("max_batch_size", 8)),
            max_queue_delay_ms=float(d.get("max_queue_delay_ms", 2.0)),
            default_timeout_ms=None if timeout is None else float(timeout),
            execute_threads=int(d.get("execute_threads", 1)),
            tune=bool(d.get("tune", False)),
            telemetry=bool(d.get("telemetry", False)),
            obs=bool(d.get("obs", False)),
            extra=dict(d.get("extra", ())),
        )


def _span_payload(trace_id: str) -> list[dict[str, Any]]:
    """The request trace's spans, sanitised to strict-JSON values.

    Shipped back in ``res``/``err`` frames so the router can merge worker
    spans into its own store; attrs are coerced to primitives because the
    control channel's strict codec (correctly) refuses anything else.
    """
    out: list[dict[str, Any]] = []
    for span in telemetry.get_store().spans(trace_id):
        d = span.as_dict()
        d["attrs"] = {
            k: v if isinstance(v, (str, int, float, bool)) or v is None else str(v)
            for k, v in d["attrs"].items()
        }
        out.append(d)
    return out


def worker_main(conn: Connection, spec_dict: dict[str, Any]) -> None:
    """Spawn entrypoint: warm up, then serve the control loop until drain."""
    spec = WorkerSpec.from_dict(spec_dict)
    chan = ControlChannel(conn)
    if spec.obs:
        obs_tracer.enable()
    if spec.telemetry:
        telemetry.enable()
    try:
        registry = ModelRegistry()
        t0 = time.perf_counter()
        for model in spec.models:
            registry.register(
                model.name,
                arch=model.arch,
                image=model.image,
                in_channels=model.in_channels,
                classes=model.classes,
                width_mult=model.width_mult,
                engine=model.engine,
                seed=model.seed,
                extra_images=model.extra_images,
                warmup=True,
                tune=spec.tune,
            )
        warmup_ms = (time.perf_counter() - t0) * 1e3
        slab = SlabRing.attach(spec.slab_name, spec.slot_bytes, spec.slots)
    except Exception as exc:  # noqa: B902 - report startup failure, then die
        try:
            chan.send(
                {"op": "fatal", "worker": spec.name, "error": str(exc),
                 "kind": type(exc).__name__},
                lenient=True,
            )
        except Exception:
            pass
        raise
    asyncio.run(_serve(chan, spec, registry, slab, warmup_ms))


async def _serve(
    chan: ControlChannel,
    spec: WorkerSpec,
    registry: ModelRegistry,
    slab: SlabRing,
    warmup_ms: float,
) -> None:
    service = InferenceService(
        registry,
        SchedulerConfig(
            policy=BatchPolicy(
                max_batch_size=spec.max_batch_size,
                max_queue_delay_ms=spec.max_queue_delay_ms,
            ),
            default_timeout_ms=spec.default_timeout_ms,
            execute_threads=spec.execute_threads,
        ),
    )
    await service.start()
    loop = asyncio.get_running_loop()
    tasks: set[asyncio.Task[None]] = set()
    chan.send(
        {
            "op": "ready",
            "worker": spec.name,
            "generation": spec.generation,
            "pid": os.getpid(),
            "warmup_ms": warmup_ms,
            "models": registry.names(),
        }
    )
    try:
        while True:
            try:
                msg = await loop.run_in_executor(None, chan.recv)
            except (EOFError, OSError):
                break  # router went away; nothing left to serve
            op = msg.get("op")
            if op == "req":
                task = asyncio.ensure_future(_serve_one(service, slab, chan, msg))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            elif op == "ping":
                chan.send(
                    {"op": "pong", "worker": spec.name,
                     "generation": spec.generation, "t": msg.get("t")}
                )
            elif op == "scrape":
                chan.send(
                    {"op": "scrape_reply", "worker": spec.name,
                     "metrics": get_registry().as_dict()},
                    lenient=True,
                )
            elif op == "stats":
                chan.send(
                    {"op": "stats_reply", "worker": spec.name,
                     "stats": service.stats(),
                     "control": chan.stats.as_dict()},
                    lenient=True,
                )
            elif op == "crash":
                os._exit(CRASH_EXIT_CODE)
            elif op == "drain":
                break
            # Unknown ops are ignored: protocol additions must not kill
            # older workers mid-rollout.
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await service.stop(drain=True)
        try:
            chan.send({"op": "bye", "worker": spec.name, "generation": spec.generation})
        except (OSError, BrokenPipeError):
            pass
        slab.close()
        chan.close()


async def _serve_one(
    service: InferenceService, slab: SlabRing, chan: ControlChannel, msg: dict[str, Any]
) -> None:
    """One request: slab in -> local dynamic batcher -> slab out, tag echoed."""
    rid = msg.get("rid")
    slot = int(msg["slot"])
    tag = int(msg["tag"])
    trace = (
        telemetry.start_trace(msg.get("traceparent"))
        if telemetry.enabled()
        else None
    )
    reply: dict[str, Any] = {"rid": rid, "slot": slot, "tag": tag}
    try:
        x = slab.read(slot, msg["shape"], msg["dtype"])
        timeout_ms = msg.get("timeout_ms", "default")
        out = await service.infer(
            str(msg["model"]), x, timeout_ms=timeout_ms, trace=trace
        )
        meta = slab.write(slot, out)
        reply.update(op="res", **meta)
    except ServeError as exc:
        reply.update(op="err", kind=type(exc).__name__, error=str(exc))
    except Exception as exc:  # noqa: B902 - a worker bug must not kill the loop
        reply.update(op="err", kind="ServeError", error=f"{type(exc).__name__}: {exc}")
    if trace is not None:
        reply["spans"] = _span_payload(trace.trace_id)
    try:
        chan.send(reply)
    except (OSError, BrokenPipeError):
        pass  # router is gone; the drain path will wind the loop down
