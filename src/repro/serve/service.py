"""Inference service: the in-process async API plus a JSON-over-HTTP face.

:class:`InferenceService` glues a :class:`~repro.serve.registry.ModelRegistry`
to a :class:`~repro.serve.scheduler.Scheduler` and exposes:

* ``await service.infer(model, x)`` — the in-process path (what the load
  generator and tests drive; zero serialisation overhead);
* ``service.stats()`` — scheduler counters + per-model registry state;
* ``await service.serve_http(host, port)`` — a dependency-free HTTP/1.1
  endpoint (the shared :class:`~repro.serve.httpfront.JsonHttpServer`,
  which the cluster router's front end also uses):

  ====================  =====================================================
  ``GET /healthz``      liveness: ``{"status": "ok"}``; with an SLO
                        configured, answers **503** while the error budget
                        fast-burns (see :mod:`repro.obs.slo`)
  ``GET /metrics``      Prometheus text exposition of the obs registry
                        (:mod:`repro.obs.promexport`)
  ``GET /v1/models``    registered models and their warmup/version state
  ``GET /v1/stats``     scheduler + queue counters (+ ``slo`` when set)
  ``POST /v1/infer``    ``{"model": name, "inputs": nested-list,``
                        ``"timeout_ms": optional}`` -> ``{"outputs": ...}``;
                        accepts and echoes a W3C ``traceparent`` header when
                        request telemetry is on
  ====================  =====================================================

Error mapping is the typed error surface's ``http_status``: unknown model
404, malformed payload 400, queue full 429, deadline 504, stopped 503.
The wire format is JSON nested lists — simple, inspectable, curl-able; a
binary format would only move the needle once the conv itself stops
dominating.

Shutdown is **single-flight idempotent**: however many callers race into
:meth:`stop` (outer teardown layers, the cluster router's drain, a test's
``finally``), exactly one teardown runs and every caller awaits that same
teardown — so a drain arriving during an in-flight flush can never tear
resources out from under the batches the first stop is still flushing.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..obs import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..obs.perfledger import get_ledger
from ..obs.telemetry import TraceContext
from .errors import ServeError
from .httpfront import JsonHttpServer, handle_infer_request
from .registry import ModelRegistry
from .scheduler import Scheduler, SchedulerConfig

__all__ = ["InferenceService"]


class InferenceService:
    """Registry + scheduler + (optional) HTTP front end, one lifecycle."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry()
        self.scheduler = Scheduler(self.registry, config)
        self._http = JsonHttpServer(self._dispatch)
        self._stop_task: asyncio.Task[None] | None = None
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "InferenceService":
        await self.scheduler.start()
        self._stop_task = None
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the HTTP face and the scheduler, exactly once.

        Concurrent and repeated stops share one teardown task: the first
        caller starts it, everyone awaits it (shielded, so one impatient
        caller's cancellation cannot abort the teardown mid-flush for the
        others).  The first caller's ``drain`` choice wins.
        """
        if self._stop_task is None:
            self._stop_task = asyncio.ensure_future(self._stop_impl(drain=drain))
        await asyncio.shield(self._stop_task)

    async def _stop_impl(self, *, drain: bool) -> None:
        await self._http.stop()
        await self.scheduler.stop(drain=drain)

    async def __aenter__(self) -> "InferenceService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- in-process API ------------------------------------------------------

    async def infer(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout_ms: float | None | object = "default",
        trace: TraceContext | None = None,
    ) -> np.ndarray:
        """Submit one request through the dynamic batcher and await it."""
        return await self.scheduler.submit(model, x, timeout_ms=timeout_ms, trace=trace)

    def stats(self) -> dict[str, object]:
        out: dict[str, object] = {
            "uptime_s": time.monotonic() - self._started_at,
            "queue_depth": self.scheduler.queue_depth,
            "scheduler": self.scheduler.stats().as_dict(),
            "models": self.registry.describe(),
            # Predict-vs-measure drift over every conv this process executed
            # (the timing ledger): tracked keys, executions, in-band
            # fraction, worst offender.  Empty but well-formed when obs is
            # off — the ledger only fills while instrumentation is enabled.
            "perf": get_ledger().drift_report(),
        }
        slo = self.scheduler.slo_status()
        if slo is not None:
            out["slo"] = slo.as_dict()
        return out

    # -- HTTP front end ------------------------------------------------------

    async def serve_http(self, host: str = "127.0.0.1", port: int = 8707) -> tuple[str, int]:
        """Start the HTTP endpoint; returns the bound ``(host, port)``."""
        return await self._http.start(host, port)

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, object] | str, dict[str, str]]:
        """Route one request; returns ``(status, payload, extra headers)``.

        A ``dict`` payload is sent as JSON, a ``str`` payload verbatim with
        the ``content-type`` named in the extra headers (the Prometheus
        exposition route).
        """
        try:
            if method == "GET" and path == "/healthz":
                return self._handle_healthz()
            if method == "GET" and path == "/metrics":
                return 200, render_prometheus(), {"content-type": PROMETHEUS_CONTENT_TYPE}
            if method == "GET" and path == "/v1/models":
                return 200, {"models": self.registry.describe()}, {}
            if method == "GET" and path == "/v1/stats":
                return 200, self.stats(), {}
            if method == "POST" and path == "/v1/infer":
                return await handle_infer_request(self.infer, headers, body)
            return 404, {"error": f"no route {method} {path}"}, {}
        except ServeError as exc:
            return exc.http_status, {"error": str(exc), "kind": type(exc).__name__}, {}
        except Exception as exc:  # noqa: B902 - last-resort 500, never a hang
            return 500, {"error": str(exc), "kind": type(exc).__name__}, {}

    def _handle_healthz(self) -> tuple[int, dict[str, object], dict[str, str]]:
        """Liveness, SLO-aware: a fast burn answers 503 so load balancers
        shed traffic while the error budget is being torched."""
        slo = self.scheduler.slo_status()
        if slo is None:
            return 200, {"status": "ok"}, {}
        if slo.fast_burn:
            return 503, {"status": "degraded", "slo": slo.as_dict()}, {}
        return 200, {"status": "ok", "slo": slo.as_dict()}, {}
