"""Inference service: the in-process async API plus a JSON-over-HTTP face.

:class:`InferenceService` glues a :class:`~repro.serve.registry.ModelRegistry`
to a :class:`~repro.serve.scheduler.Scheduler` and exposes:

* ``await service.infer(model, x)`` — the in-process path (what the load
  generator and tests drive; zero serialisation overhead);
* ``service.stats()`` — scheduler counters + per-model registry state;
* ``await service.serve_http(host, port)`` — a dependency-free HTTP/1.1
  endpoint over ``asyncio.start_server``:

  ====================  =====================================================
  ``GET /healthz``      liveness: ``{"status": "ok"}``
  ``GET /v1/models``    registered models and their warmup/version state
  ``GET /v1/stats``     scheduler + queue counters
  ``POST /v1/infer``    ``{"model": name, "inputs": nested-list,``
                        ``"timeout_ms": optional}`` -> ``{"outputs": ...}``
  ====================  =====================================================

Error mapping is the typed error surface's ``http_status``: unknown model
404, malformed payload 400, queue full 429, deadline 504, stopped 503.
The wire format is JSON nested lists — simple, inspectable, curl-able; a
binary format would only move the needle once the conv itself stops
dominating.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from .errors import BadRequest, ServeError
from .registry import ModelRegistry
from .scheduler import Scheduler, SchedulerConfig

__all__ = ["InferenceService"]

_MAX_BODY_BYTES = 64 * 1024 * 1024


class InferenceService:
    """Registry + scheduler + (optional) HTTP front end, one lifecycle."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry()
        self.scheduler = Scheduler(self.registry, config)
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.Task[None]] = set()
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "InferenceService":
        await self.scheduler.start()
        return self

    async def stop(self, *, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # start_server only stops accepting; close keep-alive connections too.
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
            self._conns.clear()
        await self.scheduler.stop(drain=drain)

    async def __aenter__(self) -> "InferenceService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- in-process API ------------------------------------------------------

    async def infer(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout_ms: float | None | object = "default",
    ) -> np.ndarray:
        """Submit one request through the dynamic batcher and await it."""
        return await self.scheduler.submit(model, x, timeout_ms=timeout_ms)

    def stats(self) -> dict[str, object]:
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "queue_depth": self.scheduler.queue_depth,
            "scheduler": self.scheduler.stats().as_dict(),
            "models": self.registry.describe(),
        }

    # -- HTTP front end ------------------------------------------------------

    async def serve_http(self, host: str = "127.0.0.1", port: int = 8707) -> tuple[str, int]:
        """Start the HTTP endpoint; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle_conn, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
            task.add_done_callback(self._conns.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                status, payload = await self._dispatch(method, path, body)
                data = (json.dumps(payload) + "\n").encode()
                writer.write(
                    (
                        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(data)}\r\n"
                        "Connection: keep-alive\r\n\r\n"
                    ).encode()
                    + data
                )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass  # service stop closes lingering keep-alive connections
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _ = line.decode("latin-1").split(" ", 2)
        except ValueError:
            return None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = min(int(value.strip()), _MAX_BODY_BYTES)
                except ValueError:
                    length = 0
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, object]]:
        try:
            if method == "GET" and path == "/healthz":
                return 200, {"status": "ok"}
            if method == "GET" and path == "/v1/models":
                return 200, {"models": self.registry.describe()}
            if method == "GET" and path == "/v1/stats":
                return 200, self.stats()
            if method == "POST" and path == "/v1/infer":
                return await self._handle_infer(body)
            return 404, {"error": f"no route {method} {path}"}
        except ServeError as exc:
            return exc.http_status, {"error": str(exc), "kind": type(exc).__name__}
        except Exception as exc:  # noqa: B902 - last-resort 500, never a hang
            return 500, {"error": str(exc), "kind": type(exc).__name__}

    async def _handle_infer(self, body: bytes) -> tuple[int, dict[str, object]]:
        try:
            payload = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "model" not in payload or "inputs" not in payload:
            raise BadRequest('POST /v1/infer expects {"model": ..., "inputs": ...}')
        try:
            x = np.asarray(payload["inputs"], dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"inputs are not a numeric array: {exc}") from exc
        timeout_ms = payload.get("timeout_ms", "default")
        t0 = time.perf_counter()
        out = await self.infer(str(payload["model"]), x, timeout_ms=timeout_ms)
        return 200, {
            "model": payload["model"],
            "outputs": out.tolist(),
            "latency_ms": (time.perf_counter() - t0) * 1e3,
        }


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}
