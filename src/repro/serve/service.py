"""Inference service: the in-process async API plus a JSON-over-HTTP face.

:class:`InferenceService` glues a :class:`~repro.serve.registry.ModelRegistry`
to a :class:`~repro.serve.scheduler.Scheduler` and exposes:

* ``await service.infer(model, x)`` — the in-process path (what the load
  generator and tests drive; zero serialisation overhead);
* ``service.stats()`` — scheduler counters + per-model registry state;
* ``await service.serve_http(host, port)`` — a dependency-free HTTP/1.1
  endpoint over ``asyncio.start_server``:

  ====================  =====================================================
  ``GET /healthz``      liveness: ``{"status": "ok"}``; with an SLO
                        configured, answers **503** while the error budget
                        fast-burns (see :mod:`repro.obs.slo`)
  ``GET /metrics``      Prometheus text exposition of the obs registry
                        (:mod:`repro.obs.promexport`)
  ``GET /v1/models``    registered models and their warmup/version state
  ``GET /v1/stats``     scheduler + queue counters (+ ``slo`` when set)
  ``POST /v1/infer``    ``{"model": name, "inputs": nested-list,``
                        ``"timeout_ms": optional}`` -> ``{"outputs": ...}``;
                        accepts and echoes a W3C ``traceparent`` header when
                        request telemetry is on
  ====================  =====================================================

Error mapping is the typed error surface's ``http_status``: unknown model
404, malformed payload 400, queue full 429, deadline 504, stopped 503.
The wire format is JSON nested lists — simple, inspectable, curl-able; a
binary format would only move the needle once the conv itself stops
dominating.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from ..obs import PROMETHEUS_CONTENT_TYPE, render_prometheus, telemetry
from ..obs.perfledger import get_ledger
from ..obs.telemetry import TraceContext
from .errors import BadRequest, ServeError
from .registry import ModelRegistry
from .scheduler import Scheduler, SchedulerConfig

__all__ = ["InferenceService"]

_MAX_BODY_BYTES = 64 * 1024 * 1024


class InferenceService:
    """Registry + scheduler + (optional) HTTP front end, one lifecycle."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry()
        self.scheduler = Scheduler(self.registry, config)
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.Task[None]] = set()
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "InferenceService":
        await self.scheduler.start()
        return self

    async def stop(self, *, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # start_server only stops accepting; close keep-alive connections too.
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
            self._conns.clear()
        await self.scheduler.stop(drain=drain)

    async def __aenter__(self) -> "InferenceService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- in-process API ------------------------------------------------------

    async def infer(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout_ms: float | None | object = "default",
        trace: TraceContext | None = None,
    ) -> np.ndarray:
        """Submit one request through the dynamic batcher and await it."""
        return await self.scheduler.submit(model, x, timeout_ms=timeout_ms, trace=trace)

    def stats(self) -> dict[str, object]:
        out: dict[str, object] = {
            "uptime_s": time.monotonic() - self._started_at,
            "queue_depth": self.scheduler.queue_depth,
            "scheduler": self.scheduler.stats().as_dict(),
            "models": self.registry.describe(),
            # Predict-vs-measure drift over every conv this process executed
            # (the timing ledger): tracked keys, executions, in-band
            # fraction, worst offender.  Empty but well-formed when obs is
            # off — the ledger only fills while instrumentation is enabled.
            "perf": get_ledger().drift_report(),
        }
        slo = self.scheduler.slo_status()
        if slo is not None:
            out["slo"] = slo.as_dict()
        return out

    # -- HTTP front end ------------------------------------------------------

    async def serve_http(self, host: str = "127.0.0.1", port: int = 8707) -> tuple[str, int]:
        """Start the HTTP endpoint; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle_conn, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
            task.add_done_callback(self._conns.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = await self._dispatch(method, path, headers, body)
                if isinstance(payload, str):
                    data = payload.encode()
                    ctype = extra.pop("content-type", "text/plain; charset=utf-8")
                else:
                    data = (json.dumps(payload) + "\n").encode()
                    ctype = "application/json"
                head = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                    f"Content-Type: {ctype}",
                    f"Content-Length: {len(data)}",
                    "Connection: keep-alive",
                ]
                head.extend(f"{k}: {v}" for k, v in extra.items())
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + data)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass  # service stop closes lingering keep-alive connections
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _ = line.decode("latin-1").split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = min(int(headers.get("content-length", "0")), _MAX_BODY_BYTES)
        except ValueError:
            length = 0
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, object] | str, dict[str, str]]:
        """Route one request; returns ``(status, payload, extra headers)``.

        A ``dict`` payload is sent as JSON, a ``str`` payload verbatim with
        the ``content-type`` named in the extra headers (the Prometheus
        exposition route).
        """
        try:
            if method == "GET" and path == "/healthz":
                return self._handle_healthz()
            if method == "GET" and path == "/metrics":
                return 200, render_prometheus(), {"content-type": PROMETHEUS_CONTENT_TYPE}
            if method == "GET" and path == "/v1/models":
                return 200, {"models": self.registry.describe()}, {}
            if method == "GET" and path == "/v1/stats":
                return 200, self.stats(), {}
            if method == "POST" and path == "/v1/infer":
                return await self._handle_infer(headers, body)
            return 404, {"error": f"no route {method} {path}"}, {}
        except ServeError as exc:
            return exc.http_status, {"error": str(exc), "kind": type(exc).__name__}, {}
        except Exception as exc:  # noqa: B902 - last-resort 500, never a hang
            return 500, {"error": str(exc), "kind": type(exc).__name__}, {}

    def _handle_healthz(self) -> tuple[int, dict[str, object], dict[str, str]]:
        """Liveness, SLO-aware: a fast burn answers 503 so load balancers
        shed traffic while the error budget is being torched."""
        slo = self.scheduler.slo_status()
        if slo is None:
            return 200, {"status": "ok"}, {}
        if slo.fast_burn:
            return 503, {"status": "degraded", "slo": slo.as_dict()}, {}
        return 200, {"status": "ok", "slo": slo.as_dict()}, {}

    async def _handle_infer(
        self, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, object] | str, dict[str, str]]:
        # Continue the client's W3C trace (or start one) before any parsing
        # can fail, so even error responses carry the traceparent back.
        trace: TraceContext | None = None
        extra: dict[str, str] = {}
        if telemetry.enabled():
            trace = telemetry.start_trace(headers.get("traceparent"))
            extra["traceparent"] = trace.traceparent()
        try:
            try:
                payload = json.loads(body.decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise BadRequest(f"request body is not valid JSON: {exc}") from exc
            if (
                not isinstance(payload, dict)
                or "model" not in payload
                or "inputs" not in payload
            ):
                raise BadRequest('POST /v1/infer expects {"model": ..., "inputs": ...}')
            try:
                x = np.asarray(payload["inputs"], dtype=np.float32)
            except (TypeError, ValueError) as exc:
                raise BadRequest(f"inputs are not a numeric array: {exc}") from exc
            timeout_ms = payload.get("timeout_ms", "default")
            t0 = time.perf_counter()
            out = await self.infer(
                str(payload["model"]), x, timeout_ms=timeout_ms, trace=trace
            )
        except ServeError as exc:
            err: dict[str, object] = {"error": str(exc), "kind": type(exc).__name__}
            if trace is not None:
                err["trace_id"] = trace.trace_id
            return exc.http_status, err, extra
        response: dict[str, object] = {
            "model": payload["model"],
            "outputs": out.tolist(),
            "latency_ms": (time.perf_counter() - t0) * 1e3,
        }
        if trace is not None:
            response["trace_id"] = trace.trace_id
        return 200, response, extra


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}
