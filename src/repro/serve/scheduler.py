"""Async scheduler: bounded admission, deadlines, graceful degradation.

The robustness contract, in order of a request's life:

* **Admission control** — the queue is bounded (``max_queue_depth``
  requests).  A full queue rejects new work *immediately* with
  :class:`~repro.serve.errors.QueueFull` (HTTP 429) instead of hanging or
  silently dropping; ``serve.rejected`` counts every rejection.
* **Deadlines** — each request carries one (default
  ``default_timeout_ms``).  Requests that age out while queued, or whose
  deadline passes before their batch dispatches, fail with
  :class:`~repro.serve.errors.DeadlineExceeded`; ``serve.expired`` counts
  them.  A deadline is a promise to the client, not a hint.
* **Graceful degradation** — if the batch's forward pass raises out of the
  compiled runtime, the batch is replayed once under
  :func:`repro.runtime.force_legacy` (the interpreted reference path,
  bit-identical, no shared compiled state); ``serve.degraded`` counts the
  fallbacks.  Only if the legacy path also fails does the error reach the
  clients of that batch.

Execution happens on a small worker pool (``execute_threads``, default 1)
via ``run_in_executor`` so the event loop keeps admitting and rejecting
while NumPy/BLAS crunches; futures complete back on the loop.  Teardown
(:meth:`Scheduler.stop`) drains or fails the queue, shuts the worker pool,
and calls the runtime :class:`~repro.runtime.engine.ExecutionConfig`'s
(idempotent, dispatch-safe) ``shutdown``.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..obs import counter_add, gauge_set, observe, observe_windowed, span, telemetry
from ..obs.slo import SLOConfig, SLOStatus, SLOTracker
from ..obs.telemetry import TraceContext
from ..runtime import default_config, force_legacy
from ..runtime.engine import ExecutionConfig
from .batching import Batch, BatchPolicy, DynamicBatcher, PendingRequest
from .errors import DeadlineExceeded, QueueFull, ServiceStopped
from .registry import ModelRegistry, padded_rows

__all__ = ["Scheduler", "SchedulerConfig", "SchedulerStats"]


@dataclass
class SchedulerConfig:
    """Knobs of one scheduler instance."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    #: Bound on queued (admitted, not yet dispatched) requests.
    max_queue_depth: int = 256
    #: Default per-request deadline; ``None`` means no deadline.
    default_timeout_ms: float | None = 1000.0
    #: Model-execution worker threads.  One is usually right: BLAS releases
    #: the GIL and parallelises internally; more threads mainly help when
    #: many small models share the server.
    execute_threads: int = 1
    #: Service-level objective evaluated by the flush loop; ``None`` (the
    #: default) disables SLO tracking entirely.
    slo: SLOConfig | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.execute_threads < 1:
            raise ValueError(f"execute_threads must be >= 1, got {self.execute_threads}")


@dataclass
class SchedulerStats:
    """Always-on counters (obs mirrors them when instrumentation is on)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    batches: int = 0
    degraded_batches: int = 0
    max_queue_depth_seen: int = 0
    latency_ms_sum: float = 0.0
    latency_ms_max: float = 0.0
    batch_sizes: dict[int, int] = field(default_factory=dict)
    #: Flush-trigger histogram: "size" / "delay" / "deadline" / "drain".
    batch_triggers: dict[str, int] = field(default_factory=dict)
    #: Predicted-vs-actual batch cost accounting (the cost model's report
    #: card at the serving edge).
    cost_batches: int = 0
    cost_abs_err_pct_sum: float = 0.0
    cost_predicted_ns_sum: float = 0.0
    cost_measured_ns_sum: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        total = sum(self.batch_sizes.values())
        if not total:
            return 0.0
        return sum(size * count for size, count in self.batch_sizes.items()) / total

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_ms_sum / self.completed if self.completed else 0.0

    @property
    def mean_cost_error_pct(self) -> float:
        """Mean absolute predicted-vs-measured batch cost error, percent."""
        return self.cost_abs_err_pct_sum / self.cost_batches if self.cost_batches else 0.0

    @property
    def cost_drift_ratio(self) -> float:
        """Measured over predicted execution ns across all costed batches."""
        if self.cost_predicted_ns_sum <= 0.0:
            return 0.0
        return self.cost_measured_ns_sum / self.cost_predicted_ns_sum

    def as_dict(self) -> dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "batches": self.batches,
            "degraded_batches": self.degraded_batches,
            "max_queue_depth_seen": self.max_queue_depth_seen,
            "mean_latency_ms": self.mean_latency_ms,
            "max_latency_ms": self.latency_ms_max,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {str(k): v for k, v in sorted(self.batch_sizes.items())},
            "flush_triggers": dict(sorted(self.batch_triggers.items())),
            "batch_cost": {
                "count": self.cost_batches,
                "mean_abs_error_pct": self.mean_cost_error_pct,
                "predicted_ms_sum": self.cost_predicted_ns_sum / 1e6,
                "measured_ms_sum": self.cost_measured_ns_sum / 1e6,
                "drift_ratio": self.cost_drift_ratio,
            },
        }


class Scheduler:
    """Dynamic-batching request scheduler over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: SchedulerConfig | None = None,
        *,
        exec_config: ExecutionConfig | None = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else SchedulerConfig()
        self._exec_config = exec_config
        self._batcher = DynamicBatcher(
            self.config.policy,
            per_row_bytes=lambda model: registry.get(model).per_row_workspace_bytes,
            predicted_batch_ns=lambda model, rows: registry.get(model).predicted_batch_ns(
                rows, batch_quantum=self.config.policy.batch_quantum
            ),
        )
        self._stats = SchedulerStats()
        self._stats_lock = threading.Lock()
        # SLO tracking (None unless configured).  SLOTracker is not
        # thread-safe on its own; every record/evaluate here runs under
        # ``_stats_lock``, which serialises loop-side bookkeeping against
        # status probes from other threads (tests, /healthz).
        self._slo = SLOTracker(self.config.slo) if self.config.slo is not None else None
        self._batch_seq = itertools.count(1)
        self._wake: asyncio.Event | None = None
        self._loop_task: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._pool: ThreadPoolExecutor | None = None
        self._running = False
        #: Set (not None) once a stop owns the teardown; concurrent stops
        #: await it instead of returning early — see :meth:`stop`.
        self._stopping: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "Scheduler":
        if self._running:
            return self
        self._running = True
        self._stopping = None
        self._wake = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.execute_threads, thread_name_prefix="repro-serve"
        )
        self._loop_task = asyncio.create_task(self._run(), name="repro-serve-flush")
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the flush loop; drain (default) or fail queued requests.

        **Single-flight idempotent**: the first stop owns the teardown;
        any stop arriving while it is still flushing (the cluster router's
        drain racing an outer teardown layer, a test's ``finally`` racing
        a crash path) *awaits that same teardown* instead of returning
        early — returning early would let its caller proceed to tear down
        the pool and runtime config out from under the in-flight drain
        batches the first stop is still completing.  The first caller's
        ``drain`` choice wins.

        Also releases the execution worker pool and the runtime's pooled
        dispatch config — both shutdowns are idempotent, so outer teardown
        layers calling :meth:`stop` again are safe.
        """
        if self._stopping is not None:
            await self._stopping.wait()
            return
        if not self._running:
            return
        self._stopping = asyncio.Event()
        try:
            self._running = False
            assert self._wake is not None
            self._wake.set()
            if self._loop_task is not None:
                await self._loop_task
                self._loop_task = None
            if drain:
                for batch in self._batcher.drain():
                    await self._run_batch(batch)
            else:
                for batch in self._batcher.drain():
                    for req in batch.requests:
                        self._fail(req, ServiceStopped("scheduler stopped"))
            if self._inflight:
                await asyncio.gather(*self._inflight, return_exceptions=True)
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            # Runtime teardown tie-in: safe even if dispatch is mid-flight
            # elsewhere, and safe to repeat (see ExecutionConfig.shutdown).
            (self._exec_config or default_config()).shutdown()
            self._gauge_depth()
            self._publish_slo()
        finally:
            # Released even on cancellation: a waiter must never hang on a
            # teardown that is no longer running.
            self._stopping.set()

    # -- submission ----------------------------------------------------------

    async def submit(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout_ms: float | None | object = "default",
        trace: TraceContext | None = None,
    ) -> np.ndarray:
        """Admit one request and await its result.

        ``trace`` is the request's trace position (the HTTP front end
        builds it from the client's ``traceparent`` header); when omitted
        and telemetry is on, the request continues the caller's active
        trace or starts a fresh one.

        Raises :class:`ModelNotFound` / :class:`BadRequest` synchronously,
        :class:`QueueFull` when admission fails, :class:`DeadlineExceeded`
        when the deadline passes first, :class:`ServiceStopped` if the
        scheduler stops without draining.
        """
        if not self._running or self._wake is None:
            raise ServiceStopped("scheduler is not running")
        entry = self.registry.get(model)
        rows, squeeze = entry.validate(x)
        if trace is None and telemetry.enabled():
            cur = telemetry.current()
            trace = cur.child() if cur is not None else telemetry.start_trace()
        depth = self._batcher.pending_requests()
        if depth >= self.config.max_queue_depth:
            with self._stats_lock:
                self._stats.rejected += 1
                # A rejection is a served error: overload burns SLO budget.
                if self._slo is not None:
                    self._slo.record(0.0, error=True)
            counter_add("serve.rejected", model=model)
            now = time.monotonic()
            telemetry.record_span(
                "serve.request", trace, now, now, root=True,
                model=model, error="QueueFull", queue_depth=depth,
            )
            raise QueueFull(
                f"queue full ({depth}/{self.config.max_queue_depth} requests); retry later"
            )
        if timeout_ms == "default":
            timeout_ms = self.config.default_timeout_ms
        now = time.monotonic()
        deadline = None if timeout_ms is None else now + float(timeout_ms) / 1e3  # type: ignore[arg-type]
        req = PendingRequest(
            model=model,
            rows=rows,
            squeeze=squeeze,
            enqueued_at=now,
            deadline=deadline,
            future=asyncio.get_running_loop().create_future(),
            trace=trace,
        )
        with self._stats_lock:
            self._stats.submitted += 1
            self._stats.max_queue_depth_seen = max(
                self._stats.max_queue_depth_seen, depth + 1
            )
        counter_add("serve.requests", model=model)
        self._batcher.add(req)
        self._gauge_depth()
        self._wake.set()
        return await req.future

    # -- flush loop ----------------------------------------------------------

    async def _run(self) -> None:
        assert self._wake is not None
        while self._running:
            due = self._batcher.next_due()
            timeout = None if due is None else max(0.0, due - time.monotonic())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except (TimeoutError, asyncio.TimeoutError):
                pass
            self._wake.clear()
            if not self._running:
                break
            now = time.monotonic()
            for req in self._batcher.expire(now):
                self._fail(
                    req,
                    DeadlineExceeded(
                        f"deadline exceeded after {(now - req.enqueued_at) * 1e3:.1f} ms in queue"
                    ),
                    expired=True,
                )
            for batch in self._batcher.take_ready(now):
                task = asyncio.create_task(self._run_batch(batch))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
            self._gauge_depth()
            self._publish_slo()

    async def _run_batch(self, batch: Batch) -> None:
        now = time.monotonic()
        live = [r for r in batch.requests if not r.expired(now)]
        for req in batch.requests:
            if req not in live:
                self._fail(
                    req, DeadlineExceeded("deadline exceeded before dispatch"), expired=True
                )
        if not live:
            return
        dropped = len(live) != len(batch.requests)
        batch = Batch(
            key=batch.key,
            requests=live,
            trigger=batch.trigger,
            predicted_ns=batch.predicted_ns,
        )
        if dropped:
            # Expiry shrank the batch; re-cost it for the surviving rows.
            batch = Batch(
                key=batch.key,
                requests=live,
                trigger=batch.trigger,
                predicted_ns=self._batcher.predicted_ns(batch.key[0], batch.rows),
            )
        bid = next(self._batch_seq)
        dispatched = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            out = await loop.run_in_executor(self._pool, self._execute, batch, bid)
        except Exception as exc:  # noqa: B902 - fan the failure out per request
            for req in live:
                self._fail(req, exc)
            return
        done = time.monotonic()
        pad = padded_rows(batch.rows, self.config.policy.batch_quantum) - batch.rows
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.batch_sizes[batch.rows] = (
                self._stats.batch_sizes.get(batch.rows, 0) + 1
            )
            self._stats.batch_triggers[batch.trigger] = (
                self._stats.batch_triggers.get(batch.trigger, 0) + 1
            )
        counter_add("serve.batches", model=batch.key[0])
        observe("serve.batch.size", batch.rows, model=batch.key[0])
        for req, part in zip(live, batch.split(out)):
            latency_ms = (done - req.enqueued_at) * 1e3
            with self._stats_lock:
                self._stats.completed += 1
                self._stats.latency_ms_sum += latency_ms
                self._stats.latency_ms_max = max(self._stats.latency_ms_max, latency_ms)
                if self._slo is not None:
                    self._slo.record(latency_ms)
            observe("serve.latency_ms", latency_ms, model=req.model)
            observe_windowed("serve.latency.window_ms", latency_ms, model=req.model)
            self._record_request_trace(req, dispatched, done, bid, pad)
            if not req.future.done():
                req.future.set_result(part)

    def _execute(self, batch: Batch, bid: int = 0) -> np.ndarray:
        """Worker-thread body: one forward pass, legacy fallback on failure."""
        entry = self.registry.get(batch.key[0])
        stacked = batch.stacked()
        # The batch is its own trace: N request traces fan *in* to it, so it
        # belongs to none of them.  Fan-in links name every request's server
        # span; the runtime's transform/gemm/tail spans nest under this one
        # via the contextvar the ``activate`` scope sets in this thread.
        bctx = telemetry.start_trace() if telemetry.enabled() else None
        pad = padded_rows(batch.rows, self.config.policy.batch_quantum) - batch.rows
        predicted_ns = batch.predicted_ns
        if predicted_ns <= 0.0:
            # Drain-path batches (and schedulers built without a cost
            # callback) arrive uncosted; price them here so the ledgered
            # predicted-vs-actual summary covers every executed batch.
            predicted_ns = entry.predicted_batch_ns(
                batch.rows, batch_quantum=self.config.policy.batch_quantum
            )
        t0 = time.perf_counter_ns()
        with span(
            "serve.batch", model=batch.key[0], requests=len(batch.requests), rows=batch.rows
        ), telemetry.activate(bctx), telemetry.trace_span(
            "serve.batch",
            batch_id=bid,
            model=batch.key[0],
            requests=len(batch.requests),
            rows=batch.rows,
            pad_rows=pad,
        ) as bspan:
            for req in batch.requests:
                if req.trace is not None:
                    bspan.add_link(req.trace.trace_id, req.trace.span_id)
                with span(
                    "serve.request",
                    rid=req.rid,
                    model=req.model,
                    rows=req.nrows,
                    queued_ms=round((time.monotonic() - req.enqueued_at) * 1e3, 3),
                ):
                    pass
            try:
                out = entry.infer_rows(
                    stacked, batch_quantum=self.config.policy.batch_quantum
                )
            except Exception:
                # Compiled-path failure: replay the whole batch on the
                # interpreted reference path (shares none of the compiled
                # state).  If this also raises, the batch truly fails.
                with self._stats_lock:
                    self._stats.degraded_batches += 1
                counter_add("serve.degraded", model=batch.key[0])
                bspan.set(degraded=True)
                with span("serve.batch.degraded", model=batch.key[0]), force_legacy():
                    out = entry.infer_rows(
                        stacked, batch_quantum=self.config.policy.batch_quantum
                    )
        self._record_batch_cost(
            batch, predicted_ns, float(time.perf_counter_ns() - t0)
        )
        return out

    def _record_batch_cost(
        self, batch: Batch, predicted_ns: float, measured_ns: float
    ) -> None:
        """Score the cost model against one executed batch.

        Error is relative to *measured* wallclock — the same convention as
        :func:`repro.gpusim.calibrate.prediction_error_pct` — so the serve
        summary and the calib-smoke suite speak in the same units.  Serve
        batches are deliberately NOT written to the timing ledger: the
        per-conv records land there from inside the executables this batch
        runs, and double counting would skew the drift report.
        """
        err_pct = (
            abs(measured_ns - predicted_ns) / measured_ns * 100.0
            if measured_ns > 0.0
            else 0.0
        )
        with self._stats_lock:
            st = self._stats
            st.cost_batches += 1
            st.cost_abs_err_pct_sum += err_pct
            st.cost_predicted_ns_sum += predicted_ns
            st.cost_measured_ns_sum += measured_ns
        observe(
            "serve.flush.predicted_ns",
            predicted_ns,
            model=batch.key[0],
            trigger=batch.trigger,
        )
        observe("serve.batch.measured_ns", measured_ns, model=batch.key[0])
        if predicted_ns > 0.0:
            gauge_set(
                "serve.batch.cost_drift", measured_ns / predicted_ns, model=batch.key[0]
            )

    # -- bookkeeping ---------------------------------------------------------

    def _fail(self, req: PendingRequest, exc: Exception, *, expired: bool = False) -> None:
        now = time.monotonic()
        latency_ms = (now - req.enqueued_at) * 1e3
        with self._stats_lock:
            if expired:
                self._stats.expired += 1
            else:
                self._stats.failed += 1
            if self._slo is not None:
                self._slo.record(latency_ms, error=True)
        if expired:
            counter_add("serve.expired", model=req.model)
        if req.trace is not None:
            telemetry.record_span(
                "serve.request", req.trace, req.enqueued_at, now, root=True,
                rid=req.rid, model=req.model, rows=req.nrows,
                error=type(exc).__name__,
            )
            telemetry.record_span(
                "serve.queued", req.trace, req.enqueued_at, now, model=req.model
            )
        if req.future is not None and not req.future.done():
            req.future.set_exception(exc)

    def _record_request_trace(
        self, req: PendingRequest, dispatched: float, done: float, bid: int, pad: int
    ) -> None:
        """Reconstruct the request's span tree once its outcome is known.

        Batching destroys request identity mid-flight, so the per-request
        spans are recorded retroactively from scheduler bookkeeping — all on
        the ``time.monotonic`` clock the live batch spans use, so the tree
        lines up: ``serve.request`` (the server root the batch span links
        to) over ``admitted -> queued -> batched -> respond``.
        """
        ctx = req.trace
        if ctx is None:
            return
        telemetry.record_span(
            "serve.request", ctx, req.enqueued_at, done, root=True,
            rid=req.rid, model=req.model, rows=req.nrows,
        )
        telemetry.record_span(
            "serve.admitted", ctx, req.enqueued_at, req.enqueued_at, model=req.model
        )
        telemetry.record_span(
            "serve.queued", ctx, req.enqueued_at, dispatched, model=req.model
        )
        telemetry.record_span(
            "serve.batched", ctx, dispatched, done,
            model=req.model, batch_id=bid, pad_rows=pad,
        )
        telemetry.record_span("serve.respond", ctx, done, done, model=req.model)

    # -- SLO -----------------------------------------------------------------

    def slo_status(self) -> SLOStatus | None:
        """Evaluate the configured SLO now; ``None`` when none is set."""
        if self._slo is None:
            return None
        with self._stats_lock:
            return self._slo.evaluate()

    def _publish_slo(self) -> None:
        if self._slo is None:
            return
        with self._stats_lock:
            gauges = self._slo.gauges()
        for name, value in gauges.items():
            gauge_set(name, value)

    def _gauge_depth(self) -> None:
        gauge_set("serve.queue.depth", self._batcher.pending_requests())

    def stats(self) -> SchedulerStats:
        with self._stats_lock:
            snap = SchedulerStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                rejected=self._stats.rejected,
                expired=self._stats.expired,
                failed=self._stats.failed,
                batches=self._stats.batches,
                degraded_batches=self._stats.degraded_batches,
                max_queue_depth_seen=self._stats.max_queue_depth_seen,
                latency_ms_sum=self._stats.latency_ms_sum,
                latency_ms_max=self._stats.latency_ms_max,
                batch_sizes=dict(self._stats.batch_sizes),
                batch_triggers=dict(self._stats.batch_triggers),
                cost_batches=self._stats.cost_batches,
                cost_abs_err_pct_sum=self._stats.cost_abs_err_pct_sum,
                cost_predicted_ns_sum=self._stats.cost_predicted_ns_sum,
                cost_measured_ns_sum=self._stats.cost_measured_ns_sum,
            )
        return snap

    @property
    def queue_depth(self) -> int:
        return self._batcher.pending_requests()
