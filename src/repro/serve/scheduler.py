"""Async scheduler: bounded admission, deadlines, graceful degradation.

The robustness contract, in order of a request's life:

* **Admission control** — the queue is bounded (``max_queue_depth``
  requests).  A full queue rejects new work *immediately* with
  :class:`~repro.serve.errors.QueueFull` (HTTP 429) instead of hanging or
  silently dropping; ``serve.rejected`` counts every rejection.
* **Deadlines** — each request carries one (default
  ``default_timeout_ms``).  Requests that age out while queued, or whose
  deadline passes before their batch dispatches, fail with
  :class:`~repro.serve.errors.DeadlineExceeded`; ``serve.expired`` counts
  them.  A deadline is a promise to the client, not a hint.
* **Graceful degradation** — if the batch's forward pass raises out of the
  compiled runtime, the batch is replayed once under
  :func:`repro.runtime.force_legacy` (the interpreted reference path,
  bit-identical, no shared compiled state); ``serve.degraded`` counts the
  fallbacks.  Only if the legacy path also fails does the error reach the
  clients of that batch.

Execution happens on a small worker pool (``execute_threads``, default 1)
via ``run_in_executor`` so the event loop keeps admitting and rejecting
while NumPy/BLAS crunches; futures complete back on the loop.  Teardown
(:meth:`Scheduler.stop`) drains or fails the queue, shuts the worker pool,
and calls the runtime :class:`~repro.runtime.engine.ExecutionConfig`'s
(idempotent, dispatch-safe) ``shutdown``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..obs import counter_add, gauge_set, observe, span
from ..runtime import default_config, force_legacy
from ..runtime.engine import ExecutionConfig
from .batching import Batch, BatchPolicy, DynamicBatcher, PendingRequest
from .errors import DeadlineExceeded, QueueFull, ServiceStopped
from .registry import ModelRegistry

__all__ = ["Scheduler", "SchedulerConfig", "SchedulerStats"]


@dataclass
class SchedulerConfig:
    """Knobs of one scheduler instance."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    #: Bound on queued (admitted, not yet dispatched) requests.
    max_queue_depth: int = 256
    #: Default per-request deadline; ``None`` means no deadline.
    default_timeout_ms: float | None = 1000.0
    #: Model-execution worker threads.  One is usually right: BLAS releases
    #: the GIL and parallelises internally; more threads mainly help when
    #: many small models share the server.
    execute_threads: int = 1

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.execute_threads < 1:
            raise ValueError(f"execute_threads must be >= 1, got {self.execute_threads}")


@dataclass
class SchedulerStats:
    """Always-on counters (obs mirrors them when instrumentation is on)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    batches: int = 0
    degraded_batches: int = 0
    max_queue_depth_seen: int = 0
    latency_ms_sum: float = 0.0
    latency_ms_max: float = 0.0
    batch_sizes: dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        total = sum(self.batch_sizes.values())
        if not total:
            return 0.0
        return sum(size * count for size, count in self.batch_sizes.items()) / total

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_ms_sum / self.completed if self.completed else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "batches": self.batches,
            "degraded_batches": self.degraded_batches,
            "max_queue_depth_seen": self.max_queue_depth_seen,
            "mean_latency_ms": self.mean_latency_ms,
            "max_latency_ms": self.latency_ms_max,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {str(k): v for k, v in sorted(self.batch_sizes.items())},
        }


class Scheduler:
    """Dynamic-batching request scheduler over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: SchedulerConfig | None = None,
        *,
        exec_config: ExecutionConfig | None = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else SchedulerConfig()
        self._exec_config = exec_config
        self._batcher = DynamicBatcher(
            self.config.policy,
            per_row_bytes=lambda model: registry.get(model).per_row_workspace_bytes,
        )
        self._stats = SchedulerStats()
        self._stats_lock = threading.Lock()
        self._wake: asyncio.Event | None = None
        self._loop_task: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._pool: ThreadPoolExecutor | None = None
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "Scheduler":
        if self._running:
            return self
        self._running = True
        self._wake = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.execute_threads, thread_name_prefix="repro-serve"
        )
        self._loop_task = asyncio.create_task(self._run(), name="repro-serve-flush")
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the flush loop; drain (default) or fail queued requests.

        Also releases the execution worker pool and the runtime's pooled
        dispatch config — both shutdowns are idempotent, so outer teardown
        layers calling :meth:`stop` again are safe.
        """
        if not self._running:
            return
        self._running = False
        assert self._wake is not None
        self._wake.set()
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None
        if drain:
            for batch in self._batcher.drain():
                await self._run_batch(batch)
        else:
            for batch in self._batcher.drain():
                for req in batch.requests:
                    self._fail(req, ServiceStopped("scheduler stopped"))
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        # Runtime teardown tie-in: safe even if dispatch is mid-flight
        # elsewhere, and safe to repeat (see ExecutionConfig.shutdown).
        (self._exec_config or default_config()).shutdown()
        self._gauge_depth()

    # -- submission ----------------------------------------------------------

    async def submit(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout_ms: float | None | object = "default",
    ) -> np.ndarray:
        """Admit one request and await its result.

        Raises :class:`ModelNotFound` / :class:`BadRequest` synchronously,
        :class:`QueueFull` when admission fails, :class:`DeadlineExceeded`
        when the deadline passes first, :class:`ServiceStopped` if the
        scheduler stops without draining.
        """
        if not self._running or self._wake is None:
            raise ServiceStopped("scheduler is not running")
        entry = self.registry.get(model)
        rows, squeeze = entry.validate(x)
        depth = self._batcher.pending_requests()
        if depth >= self.config.max_queue_depth:
            with self._stats_lock:
                self._stats.rejected += 1
            counter_add("serve.rejected", model=model)
            raise QueueFull(
                f"queue full ({depth}/{self.config.max_queue_depth} requests); retry later"
            )
        if timeout_ms == "default":
            timeout_ms = self.config.default_timeout_ms
        now = time.monotonic()
        deadline = None if timeout_ms is None else now + float(timeout_ms) / 1e3  # type: ignore[arg-type]
        req = PendingRequest(
            model=model,
            rows=rows,
            squeeze=squeeze,
            enqueued_at=now,
            deadline=deadline,
            future=asyncio.get_running_loop().create_future(),
        )
        with self._stats_lock:
            self._stats.submitted += 1
            self._stats.max_queue_depth_seen = max(
                self._stats.max_queue_depth_seen, depth + 1
            )
        counter_add("serve.requests", model=model)
        self._batcher.add(req)
        self._gauge_depth()
        self._wake.set()
        return await req.future

    # -- flush loop ----------------------------------------------------------

    async def _run(self) -> None:
        assert self._wake is not None
        while self._running:
            due = self._batcher.next_due()
            timeout = None if due is None else max(0.0, due - time.monotonic())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except (TimeoutError, asyncio.TimeoutError):
                pass
            self._wake.clear()
            if not self._running:
                break
            now = time.monotonic()
            for req in self._batcher.expire(now):
                self._fail(
                    req,
                    DeadlineExceeded(
                        f"deadline exceeded after {(now - req.enqueued_at) * 1e3:.1f} ms in queue"
                    ),
                    expired=True,
                )
            for batch in self._batcher.take_ready(now):
                task = asyncio.create_task(self._run_batch(batch))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
            self._gauge_depth()

    async def _run_batch(self, batch: Batch) -> None:
        now = time.monotonic()
        live = [r for r in batch.requests if not r.expired(now)]
        for req in batch.requests:
            if req not in live:
                self._fail(
                    req, DeadlineExceeded("deadline exceeded before dispatch"), expired=True
                )
        if not live:
            return
        batch = Batch(key=batch.key, requests=live)
        loop = asyncio.get_running_loop()
        try:
            out = await loop.run_in_executor(self._pool, self._execute, batch)
        except Exception as exc:  # noqa: B902 - fan the failure out per request
            for req in live:
                self._fail(req, exc)
            return
        done = time.monotonic()
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.batch_sizes[batch.rows] = (
                self._stats.batch_sizes.get(batch.rows, 0) + 1
            )
        counter_add("serve.batches", model=batch.key[0])
        observe("serve.batch.size", batch.rows, model=batch.key[0])
        for req, part in zip(live, batch.split(out)):
            latency_ms = (done - req.enqueued_at) * 1e3
            with self._stats_lock:
                self._stats.completed += 1
                self._stats.latency_ms_sum += latency_ms
                self._stats.latency_ms_max = max(self._stats.latency_ms_max, latency_ms)
            observe("serve.latency_ms", latency_ms, model=req.model)
            if not req.future.done():
                req.future.set_result(part)

    def _execute(self, batch: Batch) -> np.ndarray:
        """Worker-thread body: one forward pass, legacy fallback on failure."""
        entry = self.registry.get(batch.key[0])
        stacked = batch.stacked()
        with span(
            "serve.batch", model=batch.key[0], requests=len(batch.requests), rows=batch.rows
        ):
            for req in batch.requests:
                with span(
                    "serve.request",
                    rid=req.rid,
                    model=req.model,
                    rows=req.nrows,
                    queued_ms=round((time.monotonic() - req.enqueued_at) * 1e3, 3),
                ):
                    pass
            try:
                return entry.infer_rows(
                    stacked, batch_quantum=self.config.policy.batch_quantum
                )
            except Exception:
                # Compiled-path failure: replay the whole batch on the
                # interpreted reference path (shares none of the compiled
                # state).  If this also raises, the batch truly fails.
                with self._stats_lock:
                    self._stats.degraded_batches += 1
                counter_add("serve.degraded", model=batch.key[0])
                with span("serve.batch.degraded", model=batch.key[0]), force_legacy():
                    return entry.infer_rows(
                        stacked, batch_quantum=self.config.policy.batch_quantum
                    )

    # -- bookkeeping ---------------------------------------------------------

    def _fail(self, req: PendingRequest, exc: Exception, *, expired: bool = False) -> None:
        with self._stats_lock:
            if expired:
                self._stats.expired += 1
            else:
                self._stats.failed += 1
        if expired:
            counter_add("serve.expired", model=req.model)
        if req.future is not None and not req.future.done():
            req.future.set_exception(exc)

    def _gauge_depth(self) -> None:
        gauge_set("serve.queue.depth", self._batcher.pending_requests())

    def stats(self) -> SchedulerStats:
        with self._stats_lock:
            snap = SchedulerStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                rejected=self._stats.rejected,
                expired=self._stats.expired,
                failed=self._stats.failed,
                batches=self._stats.batches,
                degraded_batches=self._stats.degraded_batches,
                max_queue_depth_seen=self._stats.max_queue_depth_seen,
                latency_ms_sum=self._stats.latency_ms_sum,
                latency_ms_max=self._stats.latency_ms_max,
                batch_sizes=dict(self._stats.batch_sizes),
            )
        return snap

    @property
    def queue_depth(self) -> int:
        return self._batcher.pending_requests()
