"""Calibration constants of the performance model — all in one place.

Not to be confused with :mod:`repro.gpusim.calibrate` (no trailing
``-ion``): **this** module is the hand-set *architectural* issue-efficiency
fractions modeling the paper's GPUs, fixed once against Figures 8/9 and
never fitted per machine; **that** module fits a linear wallclock cost
model to the NumPy/BLAS substrate of whatever machine the repo runs on
(``python -m repro.gpusim.calibrate fit``).  Constants here feed the
device-side predictions; fits there feed the runtime-side predictions.

The model in :mod:`repro.gpusim.perfmodel` is analytical: times come from
counted arithmetic and bytes against datasheet peaks.  What cannot be derived
from first principles is each kernel family's *achieved fraction* of issue
peak — that depends on instruction scheduling quality, which for cuDNN means
hand-tuned SASS and for the paper's kernels means "C++ without PTX or SASS"
(§4.1).  Those fractions are the constants below.  They were set once, by
eye, against the absolute Gflop/s levels of Figures 8 and 9, and are *shared
across every experiment* — no per-shape or per-figure fitting.

EXPERIMENTS.md discusses the sensitivity: the comparative structure of the
results (kernel ordering, variant ordering, boundary dips, speedup bands)
comes from the counted quantities (multiplication reduction, transform-op
ratio, occupancy, wave tails, traffic), not from these scalars; changing a
scalar moves a whole curve up or down without reordering it.
"""

from __future__ import annotations

__all__ = [
    "ARCH_EFF_GAMMA",
    "ARCH_EFF_CUDNN_GEMM_NHWC",
    "ARCH_EFF_CUDNN_GEMM_NCHW",
    "ARCH_EFF_CUDNN_FUSED_WINOGRAD",
    "ARCH_EFF_BOUNDARY_GEMM",
    "TRANSFORM_OP_FACTOR_PAIRED",
    "TRANSFORM_OP_FACTOR_DENSE",
    "WARPS_TO_HIDE_DOUBLE_BUFFERED",
    "WARPS_TO_HIDE_SINGLE_BUFFERED",
    "RUSE_ILP_FACTOR",
    "SINGLE_BUFFER_ISSUE_EFF",
    "TRANSFORM_OVERLAP_CREDIT",
    "L2_RESIDENT_HIT_RATE",
]

#: Issue efficiency of the paper's Gamma kernels (C++-level CUDA, FMA-heavy
#: inner loop, §4.1: "may not achieve the max hardware efficiency").
ARCH_EFF_GAMMA = 0.46

#: cuDNN Implicit_Precomp_GEMM, NHWC: hand-tuned SASS, the strongest general
#: baseline ("the fastest algorithm supporting NHWC format", §6.1.1).
ARCH_EFF_CUDNN_GEMM_NHWC = 0.74

#: Same algorithm, NCHW layout: slightly weaker vectorisation of the
#: channel-minor loads on these shapes.
ARCH_EFF_CUDNN_GEMM_NCHW = 0.68

#: cuDNN Fused_Winograd (F(2x2,3x3), NCHW-only): tuned, but its 16-state 2D
#: tiles pay more SMEM pressure per flop.
ARCH_EFF_CUDNN_FUSED_WINOGRAD = 0.42

#: The authors' own GEMM used for the §5.5 boundary tail — explicitly
#: "slower than cuDNN's GEMM" (§6.1.2).
ARCH_EFF_BOUNDARY_GEMM = 0.42

#: Ops per transform-matrix entry with the §5.3 even/odd pairing (mul+add
#: stream with ~half the muls reused) and without it (dense mat-vec).
TRANSFORM_OP_FACTOR_PAIRED = 1.5
TRANSFORM_OP_FACTOR_DENSE = 2.5

#: Active warps per SM needed to hide SMEM/global latency behind the outer
#: product: double buffering overlaps the next tile load with compute (§5.1),
#: halving the requirement.
WARPS_TO_HIDE_DOUBLE_BUFFERED = 8
WARPS_TO_HIDE_SINGLE_BUFFERED = 12

#: ruse variants run 8x(16x8) outer products per thread (§5.4): doubled
#: per-thread ILP halves the warp count needed to saturate issue.
RUSE_ILP_FACTOR = 2.0

#: Without the double buffer (alpha=16, §5.1) each tile load serialises with
#: the outer product once per iteration; fraction of issue retained.
SINGLE_BUFFER_ISSUE_EFF = 0.92

#: Fraction of transform-stage ALU work that overlaps memory latency: the
#: transforms run while the next tiles are in flight (§5.1's interleaving of
#: outer products, pre-fetch and transformation across warps), so only part
#: of their issue cost lands on the critical path.
TRANSFORM_OVERLAP_CREDIT = 0.5

#: Fraction of re-read traffic served by L2 when the per-wave working set
#: fits (re-reads = the same ifm tiles read by OC/BN block columns).
L2_RESIDENT_HIT_RATE = 0.90
