"""Model-driven kernel autotuner — a cudnnFind analogue.

cuDNN exposes ``cudnnFindConvolutionForwardAlgorithm`` to benchmark
candidate kernels per problem; the paper's Table 2 implicitly does the same
("the fastest benchmark algorithm").  This module does it with the
performance model instead of wall clock: enumerate every admissible
``Gamma_alpha^{variant}`` for a problem, price each, and return the ranked
list.  Decisions are cached per (shape, device, calibration epoch).

Where the static planner (:func:`repro.core.planner.plan_convolution`)
applies the paper's written selection rules, the autotuner *searches* — the
two agree on most shapes, and the A3 ablation shapes are exactly where they
differ interestingly.

With ``use_calibration=True`` candidates are priced by the machine-fitted
wallclock model (:mod:`repro.gpusim.calibrate`) instead of the analytic
device model — picking the kernel that is fastest *on this machine's
runtime* rather than on the modeled GPU.  The active calibration is used
when one is activated; otherwise ``CALIB_<host>.json`` is loaded from the
working directory if present, else the hand-set default coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.kernels import KernelId, registered_kernels
from ..core.planner import plan_convolution
from ..nhwc.tensor import ConvShape
from . import calibrate
from .device import DeviceSpec
from .perfmodel import PerfEstimate, estimate_conv

__all__ = ["TunedChoice", "autotune_conv", "clear_autotune_cache"]


@dataclass(frozen=True)
class TunedChoice:
    """Outcome of autotuning one problem on one device."""

    best: KernelId
    estimate: PerfEstimate
    ranking: tuple[tuple[KernelId, float], ...]  # (kernel, modeled ms), fastest first
    #: Host key of the calibration that priced the ranking, or None when the
    #: analytic device model did.
    calibrated_by: str | None = None

    @property
    def gflops(self) -> float:
        return self.estimate.gflops


#: (shape, device, calibration digest | None, activation epoch).  The digest
#: — not the host name — identifies the pricing model: two calibration
#: files for the *same* host with different coefficients (a re-fit loaded
#: from disk mid-process, un-activated) must not share rankings, and the
#: activation epoch alone cannot tell them apart because merely loading a
#: file never bumps it.
_CacheKey = tuple[ConvShape, str, str | None, int]
_CACHE: dict[_CacheKey, TunedChoice] = {}


def clear_autotune_cache() -> None:
    _CACHE.clear()


def _calibration_for_ranking() -> calibrate.CalibrationModel:
    """The wallclock model a calibrated ranking should use."""
    active = calibrate.active_model()
    if active is not None:
        return active
    path = calibrate.calibration_path()
    if path.exists():
        try:
            return calibrate.CalibrationModel.load(path)
        except ValueError:
            pass
    return calibrate.default_model()


def autotune_conv(
    shape: ConvShape,
    device: DeviceSpec,
    *,
    include_extended: bool = False,
    use_calibration: bool = False,
) -> TunedChoice:
    """Pick the modeled-fastest Gamma kernel for ``shape`` on ``device``.

    Every registered kernel whose filter width matches is priced (each with
    its own §5.5 boundary segmentation as the leading kernel); results are
    cached.  The cache keys on the calibration *digest* and the activation
    epoch, so both activating/swapping a calibration and loading a
    different ``CALIB_<host>.json`` for the same host invalidate stale
    rankings.

    Raises
    ------
    ValueError
        If the problem cannot take the Winograd path at all (stride,
        unsupported width) — the caller should fall back to GEMM, exactly as
        the §5.7 dispatch does.
    """
    machine = _calibration_for_ranking() if use_calibration else None
    key: _CacheKey = (
        shape,
        device.name,
        machine.digest if machine is not None else None,
        calibrate.generation(),
    )
    if key in _CACHE:
        return _CACHE[key]
    probe = plan_convolution(shape)
    if probe.algorithm != "im2col-winograd":
        raise ValueError(f"no Winograd kernel admissible: {probe.reason}")

    candidates = [k for k in registered_kernels(include_extended) if k.r == shape.fw]
    ranked: list[tuple[KernelId, float, PerfEstimate]] = []
    for kernel in candidates:
        plan = plan_convolution(shape, alpha=kernel.alpha, variant=kernel.variant)
        est = estimate_conv(shape, device, plan=plan)
        cost_ms = (
            machine.predict_conv_ns(shape, plan=plan) * 1e-6
            if machine is not None
            else est.time_ms
        )
        ranked.append((kernel, cost_ms, est))
    ranked.sort(key=lambda t: t[1])
    best_kernel, _, best_est = ranked[0]
    choice = TunedChoice(
        best=best_kernel,
        estimate=best_est,
        ranking=tuple((k, ms) for k, ms, _ in ranked),
        calibrated_by=machine.host if machine is not None else None,
    )
    _CACHE[key] = choice
    return choice
