"""Model-driven kernel autotuner — a cudnnFind analogue.

cuDNN exposes ``cudnnFindConvolutionForwardAlgorithm`` to benchmark
candidate kernels per problem; the paper's Table 2 implicitly does the same
("the fastest benchmark algorithm").  This module does it with the
performance model instead of wall clock: enumerate every admissible
``Gamma_alpha^{variant}`` for a problem, price each, and return the ranked
list.  Decisions are cached per (shape, device).

Where the static planner (:func:`repro.core.planner.plan_convolution`)
applies the paper's written selection rules, the autotuner *searches* — the
two agree on most shapes, and the A3 ablation shapes are exactly where they
differ interestingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.kernels import KernelId, registered_kernels
from ..core.planner import plan_convolution
from ..nhwc.tensor import ConvShape
from .device import DeviceSpec
from .perfmodel import PerfEstimate, estimate_conv

__all__ = ["TunedChoice", "autotune_conv", "clear_autotune_cache"]


@dataclass(frozen=True)
class TunedChoice:
    """Outcome of autotuning one problem on one device."""

    best: KernelId
    estimate: PerfEstimate
    ranking: tuple[tuple[KernelId, float], ...]  # (kernel, modeled ms), fastest first

    @property
    def gflops(self) -> float:
        return self.estimate.gflops


_CACHE: dict[tuple[ConvShape, str], TunedChoice] = {}


def clear_autotune_cache() -> None:
    _CACHE.clear()


def autotune_conv(
    shape: ConvShape, device: DeviceSpec, *, include_extended: bool = False
) -> TunedChoice:
    """Pick the modeled-fastest Gamma kernel for ``shape`` on ``device``.

    Every registered kernel whose filter width matches is priced (each with
    its own §5.5 boundary segmentation as the leading kernel); results are
    cached.

    Raises
    ------
    ValueError
        If the problem cannot take the Winograd path at all (stride,
        unsupported width) — the caller should fall back to GEMM, exactly as
        the §5.7 dispatch does.
    """
    key = (shape, device.name)
    if key in _CACHE:
        return _CACHE[key]
    probe = plan_convolution(shape)
    if probe.algorithm != "im2col-winograd":
        raise ValueError(f"no Winograd kernel admissible: {probe.reason}")

    candidates = [k for k in registered_kernels(include_extended) if k.r == shape.fw]
    ranked: list[tuple[KernelId, float, PerfEstimate]] = []
    for kernel in candidates:
        plan = plan_convolution(shape, alpha=kernel.alpha, variant=kernel.variant)
        est = estimate_conv(shape, device, plan=plan)
        ranked.append((kernel, est.time_ms, est))
    ranked.sort(key=lambda t: t[1])
    best_kernel, _, best_est = ranked[0]
    choice = TunedChoice(
        best=best_kernel,
        estimate=best_est,
        ranking=tuple((k, ms) for k, ms, _ in ranked),
    )
    _CACHE[key] = choice
    return choice
