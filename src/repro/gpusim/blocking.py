"""Grid decomposition and wave accounting (§5.1).

The tasks of ``Gamma_alpha(n, r)`` are distributed among
``(OC / BN) x (N * OH * (OW / n) / BM)`` blocks; each block runs
``FH * IC / BK`` iterations to produce ``BN x BM`` output tiles.  The paper
argues this makes the *block count* consistent across CNN layers (early
layers: big maps, small channels; late layers: the reverse; the product is
stable) — :func:`grid_for` exposes the numbers behind that argument, and
wave/tail quantisation feeds the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.variants import VariantSpec
from ..nhwc.tensor import ConvShape
from .device import DeviceSpec
from .occupancy import Occupancy, occupancy_for

__all__ = ["GridPlan", "grid_for", "iterations_per_block"]


@dataclass(frozen=True)
class GridPlan:
    """Block-level decomposition of one Winograd segment.

    ``tail_efficiency`` is the utilisation of the final (partial) wave:
    blocks / (waves * SMs * blocks_per_SM).
    """

    grid_n: int  # along OC, BN per block
    grid_m: int  # along N*OH*tiles, BM per block
    blocks: int
    iterations: int  # FH * ceil(IC / BK)
    occupancy: Occupancy
    waves: int
    tail_efficiency: float

    @property
    def wave_slots(self) -> int:
        """Concurrent block slots per wave (``SMs * blocks_per_SM``).

        Recovered exactly from the stored quantities: ``tail_efficiency``
        is ``blocks / (waves * slots)`` by construction.
        """
        return round(self.blocks / (self.waves * self.tail_efficiency))

    @property
    def tail_blocks(self) -> int:
        """Blocks in the final, partial wave (0 when the grid fills it)."""
        tail = self.blocks - (self.waves - 1) * self.wave_slots
        return 0 if tail == self.wave_slots else tail

    @property
    def tail_loss(self) -> float:
        """Throughput fraction lost to wave quantisation (``1 - tail_eff``)."""
        return 1.0 - self.tail_efficiency

    def as_dict(self) -> dict[str, object]:
        """JSON-able view for profiler/export consumers."""
        return {
            "grid_n": self.grid_n,
            "grid_m": self.grid_m,
            "blocks": self.blocks,
            "iterations": self.iterations,
            "waves": self.waves,
            "wave_slots": self.wave_slots,
            "tail_blocks": self.tail_blocks,
            "tail_efficiency": self.tail_efficiency,
            "tail_loss": self.tail_loss,
            "occupancy": self.occupancy.as_dict(),
        }


def iterations_per_block(shape: ConvShape, spec: VariantSpec) -> int:
    """``FH * ceil(IC / BK)`` main-loop iterations (§5.1)."""
    return shape.fh * -(-shape.ic // spec.bk)


def grid_for(
    shape: ConvShape,
    spec: VariantSpec,
    device: DeviceSpec,
    *,
    ow_segment: int | None = None,
) -> GridPlan:
    """Grid/wave plan of one kernel over (a width segment of) a convolution.

    Parameters
    ----------
    shape:
        The convolution problem.
    spec:
        Kernel variant (fixes BN, BM, BK, threads, SMEM, registers).
    device:
        Target GPU.
    ow_segment:
        Output-width extent owned by this kernel (defaults to the full OW);
        must be divisible by the kernel coverage.
    """
    ow = shape.ow if ow_segment is None else ow_segment
    if ow % spec.coverage != 0:
        raise ValueError(f"segment width {ow} not divisible by coverage {spec.coverage}")
    tiles = ow // spec.n  # output tiles along the width axis
    grid_n = -(-shape.oc // spec.bn)
    grid_m = -(-(shape.batch * shape.oh * tiles) // spec.bm)
    blocks = grid_n * grid_m
    occ = occupancy_for(
        device,
        threads_per_block=spec.threads,
        smem_per_block=spec.smem_bytes,
        regs_per_thread=spec.regs_per_thread,
    )
    slots = device.sm_count * occ.blocks_per_sm
    waves = -(-blocks // slots)
    tail = blocks / (waves * slots)
    return GridPlan(
        grid_n=grid_n,
        grid_m=grid_m,
        blocks=blocks,
        iterations=iterations_per_block(shape, spec),
        occupancy=occ,
        waves=waves,
        tail_efficiency=tail,
    )
