"""Shared-memory bank model and the paper's §5.2 layouts.

A GPU SMEM is organised in 32 four-byte banks; a warp's access completes in
as many phases as the worst per-bank address multiplicity ("conflict
degree").  128-bit vectorised accesses are issued as quarter-warp phases
(8 lanes x 4 words each).

This module provides

* :func:`conflict_degree` — degree of one 32-lane word-address pattern;
* :func:`vectorized_conflict_degree` — degree of a 128-bit access, split
  into its quarter-warp phases like the hardware does;
* :class:`SmemArray` — an N-D SMEM array with optional last-dimension
  padding, producing word addresses for index patterns, so the paper's
  padded layouts (``Ys[8][32+1][16+4]`` etc., §5.2) can be evaluated
  verbatim.

The ablation bench A1 uses these to show the paper's padding/Z-arrangement
choices are exactly the ones that reach degree 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "conflict_degree",
    "conflict_histogram",
    "vectorized_conflict_degree",
    "SmemArray",
    "BANKS",
    "BANK_BYTES",
]

BANKS = 32
BANK_BYTES = 4


def conflict_degree(word_addresses: Iterable[int], banks: int = BANKS) -> int:
    """Worst per-bank multiplicity of a set of 4-byte word addresses.

    Lanes hitting the *same word* broadcast and do not conflict, so
    duplicates are collapsed before counting (matching hardware multicast).
    Degree 1 means conflict-free.
    """
    counts = conflict_histogram(word_addresses, banks)
    return max(1, int(counts.max()))


def conflict_histogram(word_addresses: Iterable[int], banks: int = BANKS) -> np.ndarray:
    """Per-bank access multiplicity of one warp's word addresses.

    The profiler's "bank utilisation" view: ``max()`` of the returned array
    is :func:`conflict_degree`; the number of nonzero entries is how many of
    the 32 banks the access touches (broadcast duplicates collapsed first).
    """
    addrs = np.unique(np.fromiter(word_addresses, dtype=np.int64))
    if addrs.size and np.any(addrs < 0):
        raise ValueError("negative SMEM word address")
    return np.bincount(addrs % banks, minlength=banks)


def vectorized_conflict_degree(
    base_word_addresses: Sequence[int], words_per_lane: int = 4, banks: int = BANKS
) -> int:
    """Total phases of a vectorised (e.g. 128-bit) warp access.

    Hardware splits a 16-byte-per-lane request into quarter-warp phases: in
    phase ``q``, lanes ``8q..8q+7`` each access ``words_per_lane``
    consecutive words.  The access costs the *sum* of per-phase degrees; a
    conflict-free 128-bit load costs 4 phases, so callers should compare
    against ``len(lanes)/8 * 1`` per word — we return the total and also
    treat ``words_per_lane == 1`` (plain 32-bit) as a single full-warp phase.
    """
    base = list(base_word_addresses)
    if words_per_lane == 1:
        return conflict_degree(base, banks)
    lanes_per_phase = max(1, 32 // words_per_lane)
    total = 0
    for q0 in range(0, len(base), lanes_per_phase):
        phase_lanes = base[q0 : q0 + lanes_per_phase]
        for w in range(words_per_lane):
            total += conflict_degree([a + w for a in phase_lanes], banks)
    # Normalise: a conflict-free access costs (#phases * words_per_lane)
    # single-degree sub-phases; report the *average* degree per sub-phase.
    phases = -(-len(base) // lanes_per_phase) * words_per_lane
    return max(1, total // phases) if phases else 1


@dataclass(frozen=True)
class SmemArray:
    """A shared-memory array with shape and (already-included) padding.

    ``shape`` lists the declared dimensions *including* any padding, e.g.
    the paper's ``Ys[8][32+1][16+4]`` is ``SmemArray("Ys", (8, 33, 20))``.
    Addresses are word (4-byte) offsets from the array base.
    """

    name: str
    shape: tuple[int, ...]

    @property
    def words(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    @property
    def bytes(self) -> int:
        return self.words * BANK_BYTES

    def address(self, *index: int) -> int:
        """Row-major word address of one element (bounds-checked)."""
        if len(index) != len(self.shape):
            raise ValueError(f"{self.name}: expected {len(self.shape)} indices, got {len(index)}")
        addr = 0
        for i, (ix, dim) in enumerate(zip(index, self.shape)):
            if not 0 <= ix < dim:
                raise IndexError(f"{self.name}: index {ix} out of range for dim {i} (size {dim})")
            addr = addr * dim + ix
        return addr

    def warp_store_degree(self, indices: Sequence[tuple[int, ...]]) -> int:
        """Conflict degree of one warp storing one word per lane."""
        return conflict_degree(self.address(*ix) for ix in indices)

    def warp_store_degree_vec(
        self, indices: Sequence[tuple[int, ...]], words_per_lane: int = 4
    ) -> int:
        """Conflict degree of a warp's vectorised store (consecutive words
        starting at each lane's index)."""
        return vectorized_conflict_degree(
            [self.address(*ix) for ix in indices], words_per_lane
        )
