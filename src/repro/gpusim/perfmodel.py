"""Analytical performance model: conv problem + kernel + device -> Gflop/s.

The model reproduces the paper's Experiment 1 (Figures 8/9, Table 2) on the
GPU-simulator substrate.  For each kernel it computes

* **actual arithmetic**: elementwise-multiply FMAs (``2*N*OH*T*OC*alpha*FH*IC``
  for ``Gamma_alpha`` — the Winograd reduction is *counted*, not assumed)
  plus the transform-stage ops (§5.3 pairing halves their multiplies);
* **issue efficiency**: a per-family achieved-fraction constant
  (:mod:`repro.gpusim.calibration`) degraded by occupancy-driven latency
  hiding (double buffering halves the warps needed, §5.1) and wave-tail
  quantisation;
* **memory time**: per-iteration global traffic (``BM`` input tiles of
  ``alpha`` items — fewer for ruse, §5.4 — and ``BN`` filter rows per BK
  channel slice), served by DRAM for unique bytes and by L2 for re-reads
  when the per-wave working set fits (the §4.2 locality argument);
* **boundary composition**: a convolution's time is the sum of its §5.5
  segments' times, each with its own kernel (+ our slower GEMM for the
  tail), plus one launch per segment — this is what makes performance dip
  whenever ``OW % n != 0``, exactly as §6.1.2 describes;
* **filter transposition** (§5.1): charged unless the caller asks for the
  paper's ``*`` variant (pre-transposed filters).

Reported Gflop/s uses the paper's metric: standard-convolution FLOPs over
time (§6.1.1), so Winograd kernels can exceed hardware peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.kernels import KernelId
from ..core.planner import ConvPlan, plan_convolution
from ..core.variants import VariantSpec, input_items_per_tile
from ..nhwc.layouts import filter_transposition_bytes
from ..nhwc.tensor import ConvShape
from ..obs import gauge_set, observe, span
from . import calibration as cal
from .blocking import GridPlan, grid_for
from .device import DeviceSpec

__all__ = [
    "PerfEstimate",
    "SegmentEstimate",
    "estimate_winograd_segment",
    "estimate_conv",
    "estimate_cudnn_gemm",
    "estimate_cudnn_fused_winograd",
    "estimate_boundary_gemm_segment",
]

_ITEM = 4  # FP32 bytes


@dataclass(frozen=True)
class SegmentEstimate:
    """Modeled execution of one width segment by one kernel."""

    name: str
    width: int
    time_ms: float
    compute_time_ms: float
    mem_time_ms: float
    actual_gflop: float
    grid: GridPlan | None = None


@dataclass(frozen=True)
class PerfEstimate:
    """Modeled execution of a full convolution.

    ``gflops`` is the paper's reported metric (standard-conv FLOPs / time);
    ``time_ms`` includes every segment, launch overheads and (unless the
    ``*`` variant was requested) the filter transposition.
    """

    algorithm: str
    device: str
    shape: ConvShape
    time_ms: float
    gflops: float
    segments: tuple[SegmentEstimate, ...] = field(default_factory=tuple)
    #: True when ``time_ms`` came from an activated machine calibration
    #: (:mod:`repro.gpusim.calibrate`) instead of the analytic device model.
    calibrated: bool = False

    @property
    def predicted_ns(self) -> float:
        """``time_ms`` in ns — the quantity the timing ledger compares."""
        return self.time_ms * 1e6

    @property
    def bound(self) -> str:
        """"compute" or "memory", judged on the dominant segment."""
        if not self.segments:
            return "compute"
        main = max(self.segments, key=lambda s: s.time_ms)
        return "compute" if main.compute_time_ms >= main.mem_time_ms else "memory"

    @property
    def gemm_tail_fraction(self) -> float:
        """Fraction of output columns served by the §5.5 GEMM tail."""
        total = sum(s.width for s in self.segments)
        if not total:
            return 0.0
        return sum(s.width for s in self.segments if s.name == "GEMM") / total

    @property
    def gemm_tail_time_fraction(self) -> float:
        """Fraction of total modeled time spent in the GEMM tail.

        Launch overheads make this exceed the column fraction for narrow
        tails — exactly the §6.1.2 dip the profiler should surface.
        """
        if self.time_ms <= 0.0:
            return 0.0
        return sum(s.time_ms for s in self.segments if s.name == "GEMM") / self.time_ms


def _transform_ratio(spec: VariantSpec, op_factor: float) -> float:
    """Transform ops per outer-product op for one block iteration.

    Per iteration a block transforms ``BM*BK`` input tiles (``~op_factor *
    alpha^2`` ops each with the §5.3 pairing) and ``BN*BK`` filter rows
    (``~op_factor * alpha * r``), against ``2 * alpha * BN * BM * BK``
    outer-product flops: ratio = op_factor*(BM*alpha + BN*r)/(2*BN*BM).
    """
    return op_factor * (spec.bm * spec.alpha + spec.bn * spec.r) / (2.0 * spec.bn * spec.bm)


def _latency_hiding(grid: GridPlan, spec: VariantSpec) -> float:
    """Issue-slot utilisation from active warps vs the hiding requirement.

    Double buffering (alpha in {4, 8}) halves the warps needed (§5.1); the
    ruse variants' doubled per-thread outer product (8x(16x8), §5.4) halves
    it again, which is how they survive their reduced thread count.
    Single-buffered kernels additionally serialise one tile load per
    iteration with compute.
    """
    need = (
        cal.WARPS_TO_HIDE_DOUBLE_BUFFERED
        if spec.double_buffered
        else cal.WARPS_TO_HIDE_SINGLE_BUFFERED
    )
    if spec.variant == "ruse":
        need = max(1.0, need / cal.RUSE_ILP_FACTOR)
    warps = grid.occupancy.active_warps
    factor = min(1.0, warps / need)
    if not spec.double_buffered:
        factor *= cal.SINGLE_BUFFER_ISSUE_EFF
    return factor


def estimate_winograd_segment(
    shape: ConvShape,
    kernel: KernelId,
    device: DeviceSpec,
    *,
    ow_segment: int | None = None,
    paired_transforms: bool = True,
) -> SegmentEstimate:
    """Model one ``Gamma_alpha(n, r)`` kernel over one width segment."""
    spec = kernel.spec
    ow = shape.ow if ow_segment is None else ow_segment
    grid = grid_for(shape, spec, device, ow_segment=ow)
    tiles = ow // spec.n

    # --- arithmetic ------------------------------------------------------
    elem_mul_flops = 2.0 * shape.batch * shape.oh * tiles * shape.oc * spec.alpha * shape.fh * shape.ic
    op_factor = (
        cal.TRANSFORM_OP_FACTOR_PAIRED if paired_transforms else cal.TRANSFORM_OP_FACTOR_DENSE
    )
    total_flops = elem_mul_flops * (
        1.0 + _transform_ratio(spec, op_factor) * cal.TRANSFORM_OVERLAP_CREDIT
    )
    eff = cal.ARCH_EFF_GAMMA * _latency_hiding(grid, spec) * grid.tail_efficiency
    compute_s = total_flops / (device.peak_fp32_gflops * 1e9 * eff)

    # --- memory ----------------------------------------------------------
    items = input_items_per_tile(spec.alpha, spec.r, spec.variant)
    per_iter_bytes = (spec.bm * items + spec.bn * spec.r) * spec.bk * _ITEM
    load_bytes = grid.blocks * grid.iterations * per_iter_bytes
    store_bytes = shape.batch * shape.oh * tiles * spec.n * shape.oc * _ITEM
    unique_in = shape.batch * shape.ih * min(shape.iw, ow + shape.fw - 1) * shape.ic * _ITEM
    unique_w = shape.oc * shape.fh * shape.fw * shape.ic * _ITEM
    mem_s = _memory_time(device, load_bytes, store_bytes, unique_in + unique_w, grid)

    time_s = max(compute_s, mem_s) + device.launch_overhead_us * 1e-6
    observe("model.segment_ns", time_s * 1e9, kernel=kernel.name, device=device.name)
    gauge_set(
        "model.occupancy_warps",
        grid.occupancy.active_warps,
        kernel=kernel.name,
        device=device.name,
    )
    return SegmentEstimate(
        name=kernel.name,
        width=ow,
        time_ms=time_s * 1e3,
        compute_time_ms=compute_s * 1e3,
        mem_time_ms=mem_s * 1e3,
        actual_gflop=total_flops / 1e9,
        grid=grid,
    )


def _memory_time(
    device: DeviceSpec,
    load_bytes: float,
    store_bytes: float,
    unique_bytes: float,
    grid: GridPlan | None,
    wave_fraction: float | None = None,
) -> float:
    """DRAM + L2 service time for a load/store stream.

    Unique bytes (first touch) and stores go to DRAM.  Re-read bytes hit L2
    at :data:`~repro.gpusim.calibration.L2_RESIDENT_HIT_RATE` when the
    per-wave working set fits in L2 — concurrent blocks of one wave share
    input across the OC/BN grid columns (§4.2's "data stays in L2 longer"
    argument for 1D tiles); otherwise the hit rate degrades proportionally.
    """
    rereads = max(0.0, load_bytes - unique_bytes)
    if grid is not None and grid.grid_n > 0:
        slots = max(1, grid.blocks // grid.waves)
        wave_ws = unique_bytes * min(1.0, slots / max(1, grid.grid_n) / max(1, grid.grid_m))
    elif wave_fraction is not None:
        wave_ws = unique_bytes * min(1.0, wave_fraction)
    else:
        wave_ws = unique_bytes
    fit = min(1.0, device.l2_bytes / max(wave_ws, 1.0))
    hit = cal.L2_RESIDENT_HIT_RATE * fit
    dram_bytes = unique_bytes + store_bytes + rereads * (1.0 - hit)
    l2_bytes = load_bytes + store_bytes
    return max(
        dram_bytes / (device.dram_bw_gbs * 1e9),
        l2_bytes / (device.l2_bw_gbs * 1e9),
    )


def estimate_boundary_gemm_segment(
    shape: ConvShape, device: DeviceSpec, width: int
) -> SegmentEstimate:
    """The authors' GEMM tail over ``width`` output columns (§5.5)."""
    flops = 2.0 * shape.batch * shape.oc * shape.oh * width * shape.fh * shape.fw * shape.ic
    eff = cal.ARCH_EFF_BOUNDARY_GEMM
    compute_s = flops / (device.peak_fp32_gflops * 1e9 * eff)
    bytes_ = (
        shape.batch * shape.oh * width * (shape.fh * shape.fw * shape.ic + shape.oc) * _ITEM
    )
    mem_s = _memory_time(device, bytes_, 0.0, bytes_, None)
    time_s = max(compute_s, mem_s) + device.launch_overhead_us * 1e-6
    return SegmentEstimate(
        name="GEMM",
        width=width,
        time_ms=time_s * 1e3,
        compute_time_ms=compute_s * 1e3,
        mem_time_ms=mem_s * 1e3,
        actual_gflop=flops / 1e9,
    )


def estimate_conv(
    shape: ConvShape,
    device: DeviceSpec,
    *,
    alpha: int | None = None,
    variant: str | None = None,
    include_filter_transpose: bool = True,
    paired_transforms: bool = True,
    plan: ConvPlan | None = None,
) -> PerfEstimate:
    """Model a full Im2col-Winograd convolution (all §5.5 segments).

    ``include_filter_transpose=False`` is the paper's ``*`` measurement
    (pre-transposed filters, §6.1.2).
    """
    if plan is None:
        plan = plan_convolution(shape, alpha=alpha, variant=variant)
    if plan.algorithm != "im2col-winograd":
        raise ValueError(f"planner refused Winograd: {plan.reason}")
    name = plan.primary.name if plan.primary is not None else "im2col-winograd"
    with span("model.estimate_conv", kernel=name, device=device.name, ow=shape.ow) as sp:
        segs: list[SegmentEstimate] = []
        for seg in plan.segments:
            if seg.is_gemm:
                segs.append(estimate_boundary_gemm_segment(shape, device, seg.width))
            else:
                segs.append(
                    estimate_winograd_segment(
                        shape,
                        seg.kernel,  # type: ignore[arg-type]
                        device,
                        ow_segment=seg.width,
                        paired_transforms=paired_transforms,
                    )
                )
        time_s = sum(s.time_ms for s in segs) * 1e-3
        if include_filter_transpose:
            tbytes = filter_transposition_bytes(shape.oc, shape.fh, shape.fw, shape.ic)
            time_s += tbytes / (device.dram_bw_gbs * 1e9) + device.launch_overhead_us * 1e-6
        # An explicitly activated machine calibration overrides the modeled
        # device time with this machine's fitted wallclock prediction.  The
        # segment breakdown stays analytic (it explains *where* time goes);
        # only the total is re-based.  Never triggered by the mere presence
        # of a CALIB_<host>.json — see repro.gpusim.calibrate.activate.
        from .calibrate import active_model

        machine = active_model()
        calibrated = machine is not None
        if machine is not None:
            time_s = machine.predict_conv_ns(shape, plan=plan) * 1e-9
        sp.set(time_ms=round(time_s * 1e3, 6), segments=len(segs), calibrated=calibrated)
    observe("model.predicted_ns", time_s * 1e9, algorithm=name, device=device.name)
    return PerfEstimate(
        algorithm=name + ("" if include_filter_transpose else "*"),
        device=device.name,
        shape=shape,
        time_ms=time_s * 1e3,
        gflops=shape.flops / time_s / 1e9,
        segments=tuple(segs),
        calibrated=calibrated,
    )


# --------------------------------------------------------------------------
# cuDNN baseline models
# --------------------------------------------------------------------------

#: Macro-tile repertoire of the Implicit_Precomp_GEMM template: cuDNN
#: heuristically picks a tile per problem; the model tries each and keeps
#: the fastest, mirroring cudnnFindConvolutionForwardAlgorithm.
_GEMM_TILES = (
    {"bn": 128, "bm": 128, "bk": 8, "threads": 256, "smem": 32_768, "regs": 255},
    {"bn": 128, "bm": 64, "bk": 8, "threads": 256, "smem": 24_576, "regs": 128},
    {"bn": 64, "bm": 128, "bk": 8, "threads": 256, "smem": 24_576, "regs": 128},
    {"bn": 64, "bm": 64, "bk": 8, "threads": 128, "smem": 16_384, "regs": 128},
    {"bn": 64, "bm": 32, "bk": 8, "threads": 128, "smem": 12_288, "regs": 96},
    {"bn": 32, "bm": 32, "bk": 8, "threads": 64, "smem": 8_192, "regs": 96},
)


def estimate_cudnn_gemm(
    shape: ConvShape, device: DeviceSpec, *, layout: str = "nhwc"
) -> PerfEstimate:
    """Model cuDNN's Implicit_Precomp_GEMM in NHWC or NCHW layout.

    A direct-convolution GEMM: ``GM = N*OH*OW``, ``GN = OC``,
    ``GK = FH*FW*IC``; the best macro-tile from the repertoire is used,
    with hand-tuned-SASS issue efficiency.
    """
    if layout not in ("nhwc", "nchw"):
        raise ValueError(f"layout must be 'nhwc' or 'nchw', got {layout!r}")
    eff_base = (
        cal.ARCH_EFF_CUDNN_GEMM_NHWC if layout == "nhwc" else cal.ARCH_EFF_CUDNN_GEMM_NCHW
    )
    gm = shape.batch * shape.oh * shape.ow
    gn = shape.oc
    gk = shape.fh * shape.fw * shape.ic
    from .occupancy import occupancy_for

    best: SegmentEstimate | None = None
    for tile in _GEMM_TILES:
        grid_n = -(-gn // tile["bn"])
        grid_m = -(-gm // tile["bm"])
        blocks = grid_n * grid_m
        occ = occupancy_for(
            device,
            threads_per_block=tile["threads"],
            smem_per_block=tile["smem"],
            regs_per_thread=tile["regs"],
        )
        slots = device.sm_count * occ.blocks_per_sm
        waves = -(-blocks // slots)
        tail = blocks / (waves * slots)
        util = (gn * gm) / (grid_n * tile["bn"] * grid_m * tile["bm"])
        flops = shape.flops / util
        # Smaller tiles reload operands more often -> lower sustained rate.
        tile_eff = min(1.0, (tile["bn"] + tile["bm"]) / 160.0)
        hide = min(1.0, occ.active_warps / cal.WARPS_TO_HIDE_DOUBLE_BUFFERED)
        eff = eff_base * tile_eff * hide * tail
        compute_s = flops / (device.peak_fp32_gflops * 1e9 * eff)
        load_bytes = blocks * (-(-gk // tile["bk"])) * (
            (tile["bn"] + tile["bm"]) * tile["bk"] * _ITEM
        )
        store_bytes = gm * gn * _ITEM
        unique = (shape.batch * shape.ih * shape.iw * shape.ic + gn * gk) * _ITEM
        # cuDNN swizzles block order for L2 locality: the working set at any
        # moment is one wave's GM strip, not the whole ifm.
        wave_frac = slots * tile["bm"] / max(1, gm)
        mem_s = _memory_time(device, load_bytes, store_bytes, unique, None, wave_frac)
        time_s = max(compute_s, mem_s) + device.launch_overhead_us * 1e-6
        cand = SegmentEstimate(
            name=f"ImplicitPrecompGEMM-{layout.upper()}",
            width=shape.ow,
            time_ms=time_s * 1e3,
            compute_time_ms=compute_s * 1e3,
            mem_time_ms=mem_s * 1e3,
            actual_gflop=flops / 1e9,
        )
        if best is None or cand.time_ms < best.time_ms:
            best = cand
    assert best is not None
    return PerfEstimate(
        algorithm=best.name,
        device=device.name,
        shape=shape,
        time_ms=best.time_ms,
        gflops=shape.flops / (best.time_ms * 1e-3) / 1e9,
        segments=(best,),
    )


def estimate_cudnn_fused_winograd(shape: ConvShape, device: DeviceSpec) -> PerfEstimate:
    """Model cuDNN's Fused_Winograd: F(2x2,3x3), NCHW, 3x3 filters only."""
    if shape.fh != 3 or shape.fw != 3:
        raise ValueError("cuDNN Fused_Winograd supports 3x3 filters only (§6.1.1)")
    m, r, alpha = 2, 3, 4
    bn, bm, bk = 64, 32, 8
    threads, regs = 256, 120
    smem = 4 * alpha * alpha * (bn // 4 + bm) * bk // 2  # 2D tiles, packed
    from .occupancy import occupancy_for

    occ = occupancy_for(device, threads_per_block=threads, smem_per_block=smem, regs_per_thread=regs)
    tiles = (-(-shape.oh // m)) * (-(-shape.ow // m))  # 2D tiles, masked edges
    # cuDNN's fused Winograd tiles per image: small feature maps leave BM
    # mostly idle — the instability the paper contrasts against (§6.1.2).
    grid_n = -(-shape.oc // bn)
    grid_m = shape.batch * (-(-tiles // bm))
    blocks = grid_n * grid_m
    slots = device.sm_count * occ.blocks_per_sm
    waves = -(-blocks // slots)
    tail = blocks / (waves * slots)
    # Masked ragged tiles still compute full 2x2 outputs; idle BM slots and
    # ragged tiles both waste issued work.
    util = (shape.oh * shape.ow) / ((-(-tiles // bm)) * bm * m * m)
    elem_flops = 2.0 * shape.batch * tiles * shape.oc * alpha * alpha * shape.ic
    transform_ratio = cal.TRANSFORM_OP_FACTOR_PAIRED * alpha / bn  # 2alpha^3 BM / (2alpha^2 BN BM)
    flops = elem_flops * (1.0 + transform_ratio * cal.TRANSFORM_OVERLAP_CREDIT)
    hide = min(1.0, occ.active_warps / cal.WARPS_TO_HIDE_SINGLE_BUFFERED)
    eff = cal.ARCH_EFF_CUDNN_FUSED_WINOGRAD * hide * tail
    compute_s = flops / (device.peak_fp32_gflops * 1e9 * eff)
    load_bytes = blocks * (shape.ic / bk) * ((bn * r * r + bm * alpha * alpha) * bk * _ITEM)
    store_bytes = shape.batch * shape.oh * shape.ow * shape.oc * _ITEM
    unique = (shape.batch * shape.ih * shape.iw * shape.ic + shape.oc * 9 * shape.ic) * _ITEM
    wave_frac = slots * bm / max(1, shape.batch * tiles)
    mem_s = _memory_time(device, load_bytes, store_bytes, unique, None, wave_frac)
    time_s = max(compute_s, mem_s) + device.launch_overhead_us * 1e-6
    seg = SegmentEstimate(
        name="FusedWinograd-NCHW",
        width=shape.ow,
        time_ms=time_s * 1e3,
        compute_time_ms=compute_s * 1e3,
        mem_time_ms=mem_s * 1e3,
        actual_gflop=flops / 1e9,
    )
    return PerfEstimate(
        algorithm=seg.name,
        device=device.name,
        shape=shape,
        time_ms=time_s * 1e3,
        gflops=shape.flops / time_s / 1e9,
        segments=(seg,),
    )
