"""GPU execution-model substrate.

Replaces the paper's physical RTX 3060 Ti / RTX 4090 testbed with an
analytical + trace model: device specs, SMEM bank simulation (§5.2),
occupancy, block/grid decomposition (§5.1) and a roofline performance model
that converts counted arithmetic and memory traffic into the paper's
Gflop/s metric.  See DESIGN.md §2 for why this substitution preserves the
comparative structure of Experiment 1.
"""

from .autotune import TunedChoice, autotune_conv, clear_autotune_cache
from .blocking import GridPlan, grid_for, iterations_per_block
from .calibrate import CalibrationModel, calibration_path
from .calibrate import activate as activate_calibration
from .calibrate import deactivate as deactivate_calibration
from .device import DEVICES, RTX3060TI, RTX4090, DeviceSpec
from .occupancy import Occupancy, occupancy_for
from .perfmodel import (
    PerfEstimate,
    SegmentEstimate,
    estimate_boundary_gemm_segment,
    estimate_conv,
    estimate_cudnn_fused_winograd,
    estimate_cudnn_gemm,
    estimate_winograd_segment,
)
from .smem import BANKS, SmemArray, conflict_degree, vectorized_conflict_degree
from .warp import (
    linear_lane_arrangement,
    swizzle_xi,
    thread_store_indices_ds,
    thread_store_indices_gs,
    z_lane_arrangement,
)

__all__ = [
    "DeviceSpec",
    "RTX3060TI",
    "RTX4090",
    "DEVICES",
    "Occupancy",
    "occupancy_for",
    "GridPlan",
    "TunedChoice",
    "autotune_conv",
    "clear_autotune_cache",
    "CalibrationModel",
    "calibration_path",
    "activate_calibration",
    "deactivate_calibration",
    "grid_for",
    "iterations_per_block",
    "PerfEstimate",
    "SegmentEstimate",
    "estimate_conv",
    "estimate_winograd_segment",
    "estimate_boundary_gemm_segment",
    "estimate_cudnn_gemm",
    "estimate_cudnn_fused_winograd",
    "SmemArray",
    "conflict_degree",
    "vectorized_conflict_degree",
    "BANKS",
    "z_lane_arrangement",
    "linear_lane_arrangement",
    "thread_store_indices_gs",
    "thread_store_indices_ds",
    "swizzle_xi",
]
