"""Warp-level access patterns of the Gamma kernels (§5.2, Figure 4).

The paper avoids SMEM bank conflicts with three devices:

1. **Z-shaped laneIdx arrangement** for the outer-product loads: within a
   warp, lane ``l`` starts its 128-bit loads of the filter buffer ``Gs`` at
   ``GIdx(l)`` and of the input buffer ``Ds`` at ``DIdx(l)``, with the
   (GIdx, DIdx) pairs snaking through the BN x BM accumulator grid in a
   Z-shape so concurrent quarter-warp phases touch disjoint bank groups.
2. **Array padding** of ``Ys``/``Ds`` last dimensions to multiples of 4
   (128-bit store units) plus an offset, spreading stores across banks.
3. **Index swizzling** for Gamma_8's ``Ds`` (padding impossible: ``Gs+Ds``
   already use the full 49152 B): ``Xi <- (Xi + 4*Xk) % 32`` at store time,
   compensated in the outer-product load mapping.

The printed formulas in the paper are "simplified"; this module implements
the arrangement that realises their stated intent (lane 1 loading items 8-15
of ``Gs`` and 0-7 of ``Ds`` per Figure 4, conflict-free phases), and the A1
ablation verifies degree-1 against a naive linear arrangement.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "z_lane_arrangement",
    "linear_lane_arrangement",
    "lane_arrangements",
    "thread_store_indices_gs",
    "thread_store_indices_ds",
    "swizzle_xi",
]


def z_lane_arrangement(lane: int) -> tuple[int, int]:
    """Z-shaped (GIdx, DIdx) start offsets of one warp lane (Figure 4).

    The 32 lanes tile an 8 x 4 grid of 8x8 outer-product patches: GIdx walks
    {0, 8, ..., 56}, DIdx walks {0, 8, 16, 24}, in the order
    (0,0), (8,0), (0,8), (8,8), (0,16), ... then the 16-lane bottom half
    shifted by 16 in GIdx — lanes in the same quarter-warp phase never share
    a ``Ds`` bank group.
    """
    if not 0 <= lane < 32:
        raise ValueError(f"lane must be in [0, 32), got {lane}")
    gidx = 8 * ((lane % 2) + 2 * (lane // 8))
    didx = 8 * ((lane % 8) // 2)
    return gidx, didx


def linear_lane_arrangement(lane: int) -> tuple[int, int]:
    """Naive row-major (GIdx, DIdx): the arrangement the Z-shape replaces."""
    if not 0 <= lane < 32:
        raise ValueError(f"lane must be in [0, 32), got {lane}")
    return 8 * (lane // 4), 8 * (lane % 4)


def lane_arrangements() -> dict[str, Callable[[int], tuple[int, int]]]:
    """Named outer-product lane arrangements, paper's choice first.

    Lets ablation/profiling code enumerate "Z" (Figure 4, conflict-free)
    against "linear" (the naive row-major it replaces) without hard-coding
    the function pair at every call site.
    """
    return {"z": z_lane_arrangement, "linear": linear_lane_arrangement}


def thread_store_indices_gs(tx: int, ty: int, bn: int) -> tuple[int, int]:
    """(Gk, Gi) store coordinates of thread (ty, tx) into ``Gs`` (§5.2).

    ``[Gk, Gi] = [ty % 8, (2*tx + [ty > 7]) * (BN / 32)]``.
    """
    return ty % 8, (2 * tx + (1 if ty > 7 else 0)) * (bn // 32)


def thread_store_indices_ds(tx: int, ty: int, bm: int) -> tuple[int, int]:
    """(Xk, Xi) store coordinates of thread (ty, tx) into ``Ds`` (§5.2).

    ``[Xk, Xi] = [tx % 8, (2*ty + [tx > 7]) * (BM / 32)]``.
    """
    return tx % 8, (2 * ty + (1 if tx > 7 else 0)) * (bm // 32)


def swizzle_xi(xi: int, xk: int, width: int = 32) -> int:
    """Gamma_8's ``Ds`` store swizzle: ``Xi <- (Xi + 4*Xk) % width`` (§5.2).

    Padding cannot be applied to Gamma_8's ``Ds`` (SMEM is exhausted), so
    the store column is rotated by the row index instead; the outer-product
    load applies the matching ``(DIdx + 4*ik + idx) % width`` rotation.
    """
    return (xi + 4 * xk) % width
