"""Machine calibration of the performance model: fit predicted ns to wallclock.

:mod:`repro.gpusim.calibration` holds the *architectural* constants of the
analytic model — issue efficiencies set once against the paper's absolute
Gflop/s levels, shared across every experiment.  Those model the paper's
GPUs.  This module models *the machine the repo actually runs on*: the
NumPy/BLAS substrate executing :func:`repro.runtime.convolve`.

The approach is the csl-experiments GEMM quick-reference's (SNIPPETS.md
Snippet 1): a small linear cost model over *counted* quantities with
empirically fitted constants.  Where the snippet uses three terms
(H2D words, FMACs, D2H words), a fused Im2col-Winograd call decomposes into
the paper's §4.1/§5.5 quantities, all countable from the
:class:`~repro.core.planner.ConvPlan` alone:

* ``transform_flop`` — input (``D^T d``) + output (``A^T m``) transform
  arithmetic across the Winograd segments (§4.1 stages 2 and 4);
* ``contract_flop`` — the transform-domain elementwise-multiply
  contraction ``2·OH·T·OC·α·FH·IC`` (§4.1 stage 3, the Winograd-reduced
  multiplication count);
* ``tail_flop`` — the §5.5 boundary-GEMM arithmetic for ``OW % n != 0``;
* ``mem_bytes`` — gathered region + transform workspace + output traffic;
* ``launch`` — segment count (per-dispatch overhead);
* ``call`` — constant per-call overhead (planning-free, but Python-level).

``measured_ns ≈ Σ c_i · feature_i`` is fitted by non-negative least squares
over wallclock measurements of the compiled runtime, and the coefficients
are persisted in a machine-keyed ``CALIB_<host>.json``.  An *activated*
calibration is consulted by :func:`repro.gpusim.perfmodel.estimate_conv`
(falling back to the analytic device model otherwise) and powers the
runtime timing ledger's predictions (:mod:`repro.obs.perfledger`), the
serve scheduler's predicted batch cost, and — optionally — the autotuner's
ranking.  Activation is **explicit** (:func:`activate`): merely fitting or
having a ``CALIB_<host>.json`` on disk never changes the modeled suites,
so the committed Figure 8/9/Table 2 baselines stay machine-independent.

Naming note: the near-twin :mod:`repro.gpusim.calibration` (trailing
``-ion``) is a different layer — the hand-set architectural issue
efficiencies of the *paper's* GPUs, set once and never machine-fitted.
This module fits *this machine*; that module models *their hardware*.

CLI::

    python -m repro.gpusim.calibrate fit [--reps 3] [--out DIR] [--no-save]
    python -m repro.gpusim.calibrate show [PATH]
    python -m repro.gpusim.calibrate predict --shape 1x64x64x32 [--oc 64]
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import json
import platform
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from ..core.planner import ConvPlan, plan_convolution
from ..nhwc.tensor import ConvShape

__all__ = [
    "FEATURES",
    "DEFAULT_COEFFS",
    "CALIB_SMOKE_SHAPES",
    "SCHEMA_VERSION",
    "CalibSample",
    "CalibrationModel",
    "conv_features",
    "features_for",
    "default_model",
    "host_key",
    "calibration_path",
    "activate",
    "deactivate",
    "activated",
    "active_model",
    "resolve_model",
    "generation",
    "measure_suite",
    "fit",
    "prediction_error_pct",
    "main",
]

SCHEMA_VERSION = 1

_ITEM = 4  # FP32 bytes

#: Fit terms, in matrix-column order.  Flop/byte terms scale with the batch;
#: ``launch``/``call`` are per-dispatch constants — which makes every
#: feature vector affine in the batch size (the property the runtime's
#: per-row prediction cache relies on).
FEATURES: tuple[str, ...] = (
    "transform_flop",
    "contract_flop",
    "tail_flop",
    "mem_bytes",
    "launch",
    "call",
)

#: Hand-set fallback coefficients (ns per unit), playing the role
#: :mod:`repro.gpusim.calibration`'s constants play for the device model:
#: plausible single-socket NumPy/BLAS rates set once, by eye — transforms
#: run as tensordot/einsum streams (~2 Gflop/s), the contraction hits BLAS
#: (~20 Gflop/s), traffic lands near memcpy bandwidth, and each segment
#: dispatch pays Python-level overhead.  A fitted ``CALIB_<host>.json``
#: exists to beat these; the ``calib-smoke`` gate asserts that it does.
DEFAULT_COEFFS: dict[str, float] = {
    "transform_flop": 0.50,
    "contract_flop": 0.05,
    "tail_flop": 0.08,
    "mem_bytes": 0.15,
    "launch": 30_000.0,
    "call": 50_000.0,
}

#: The calib-smoke measurement suite: ``(batch, ih, iw, ic, oc, alpha)``.
#: 3x3 same-padding problems spanning channel depth, spatial size, batch
#: and both practical alphas; several widths leave an ``OW % n`` remainder
#: so the tail term is actually exercised (§5.5), and the whole suite stays
#: CI-sized (every shape < ~150 ms on a laptop core).
CALIB_SMOKE_SHAPES: tuple[tuple[int, int, int, int, int, int], ...] = (
    (1, 32, 32, 32, 32, 8),
    (2, 32, 32, 16, 32, 8),
    (1, 48, 48, 32, 48, 8),
    (1, 64, 64, 32, 32, 8),
    (1, 64, 64, 64, 64, 8),
    (4, 48, 48, 32, 32, 8),
    (1, 64, 64, 32, 32, 4),
    (1, 96, 96, 32, 64, 4),
)


# --------------------------------------------------------------------------
# Features
# --------------------------------------------------------------------------


def conv_features(plan: ConvPlan, batch: int) -> dict[str, float]:
    """Fit-term values for one planned convolution at ``batch`` rows.

    Counted from the §5.5 segment decomposition exactly as the runtime
    executes it (the gathered-region / V-workspace geometry of
    :class:`~repro.runtime.executable.ConvExecutable`), so the prediction
    and the execution can never drift structurally apart.
    """
    if plan.algorithm != "im2col-winograd":
        raise ValueError(f"cannot featurise a non-Winograd plan: {plan.reason}")
    shape = plan.shape
    oh, fh, fw, ic, oc = shape.oh, shape.fh, shape.fw, shape.ic, shape.oc
    transform = contract = tail = mem = 0.0
    for seg in plan.segments:
        if seg.is_gemm:
            tail += 2.0 * oc * oh * seg.width * fh * fw * ic
            mem += _ITEM * oh * seg.width * (fh * fw * ic + oc)
            continue
        spec = seg.kernel.spec  # type: ignore[union-attr]
        n, alpha = spec.n, spec.alpha
        tiles = seg.width // n
        rows = oh + fh - 1
        ncols = (tiles - 1) * n + alpha
        # D^T d over every input row once (the runtime's fused gather), then
        # A^T m back to n output columns per tile.
        transform += 2.0 * alpha * alpha * rows * tiles * ic
        transform += 2.0 * n * alpha * oh * tiles * oc
        contract += 2.0 * oh * tiles * oc * alpha * fh * ic
        mem += _ITEM * (
            rows * ncols * ic
            + alpha * fh * oh * tiles * (ic + oc)
            + 2 * alpha * oh * tiles * oc
            + oh * seg.width * oc
        )
    b = float(batch)
    return {
        "transform_flop": transform * b,
        "contract_flop": contract * b,
        "tail_flop": tail * b,
        "mem_bytes": mem * b,
        "launch": float(len(plan.segments)),
        "call": 1.0,
    }


def features_for(
    shape: ConvShape, *, alpha: int | None = None, variant: str | None = None
) -> dict[str, float]:
    """Plan ``shape`` and return its fit terms (batch taken from the shape)."""
    unit = ConvShape(
        batch=1, ih=shape.ih, iw=shape.iw, ic=shape.ic, oc=shape.oc,
        fh=shape.fh, fw=shape.fw, ph=shape.ph, pw=shape.pw, stride=shape.stride,
    )
    plan = plan_convolution(unit, alpha=alpha, variant=variant)
    return conv_features(plan, shape.batch)


# --------------------------------------------------------------------------
# Model
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CalibSample:
    """One wallclock measurement: fit terms plus the median measured ns."""

    label: str
    features: dict[str, float]
    measured_ns: float


@dataclass(frozen=True)
class CalibrationModel:
    """Per-machine linear cost model ``ns = Σ coeff_i · feature_i``."""

    host: str
    coeffs: dict[str, float]
    fitted: bool = False
    created: str = ""
    stats: dict[str, Any] = field(default_factory=dict)

    def predict_ns(self, features: dict[str, float]) -> float:
        """Predicted wallclock ns for one feature vector."""
        return sum(self.coeffs.get(k, 0.0) * v for k, v in features.items())

    @property
    def digest(self) -> str:
        """Content digest of the model's predictions: host + coefficients.

        Two models with the same digest price every candidate identically,
        so consumers that cache rankings (the gpusim autotuner's ``_CACHE``,
        the tuning table's provenance field) key on this rather than on the
        host name — loading a *different* calibration file for the same
        host must invalidate, and it does because the coefficients differ.
        """
        body = json.dumps(
            {"host": self.host, "coeffs": {k: float(self.coeffs.get(k, 0.0)) for k in sorted(self.coeffs)}},
            sort_keys=True,
        )
        return hashlib.sha1(body.encode()).hexdigest()[:16]

    def predict_conv_ns(
        self,
        shape: ConvShape,
        *,
        plan: ConvPlan | None = None,
        alpha: int | None = None,
        variant: str | None = None,
    ) -> float:
        """Predicted wallclock ns for one convolution call."""
        if plan is not None:
            return self.predict_ns(conv_features(plan, shape.batch))
        return self.predict_ns(features_for(shape, alpha=alpha, variant=variant))

    # -- persistence --------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "host": self.host,
            "fitted": self.fitted,
            "created": self.created,
            "coeffs": {k: float(self.coeffs.get(k, 0.0)) for k in FEATURES},
            "stats": self.stats,
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "CalibrationModel":
        version = doc.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(f"schema_version {version!r} != supported {SCHEMA_VERSION}")
        coeffs = doc.get("coeffs")
        if not isinstance(coeffs, dict) or not coeffs:
            raise ValueError("calibration file has no coefficients")
        return cls(
            host=str(doc.get("host", "unknown")),
            coeffs={str(k): float(v) for k, v in coeffs.items()},
            fitted=bool(doc.get("fitted", True)),
            created=str(doc.get("created", "")),
            stats=dict(doc.get("stats", {})),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationModel":
        try:
            doc = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        model = cls.from_json(doc)
        return model


def default_model() -> CalibrationModel:
    """The hand-set fallback model (the analogue of ``calibration.py``)."""
    return CalibrationModel(host="default", coeffs=dict(DEFAULT_COEFFS), fitted=False)


def host_key() -> str:
    """This machine's calibration key, sanitised for file names."""
    node = platform.node() or "unknown"
    return re.sub(r"[^A-Za-z0-9._-]", "_", node) or "unknown"


def calibration_path(directory: str | Path = ".") -> Path:
    """``CALIB_<host>.json`` under ``directory`` for this machine."""
    return Path(directory) / f"CALIB_{host_key()}.json"


# --------------------------------------------------------------------------
# Activation (explicit — never changes modeled suites by mere presence)
# --------------------------------------------------------------------------

_ACTIVE: CalibrationModel | None = None
#: Bumped on every (de)activation; cached per-row predictions (the runtime
#: executable's, the registry's) key on it to notice model swaps.
_GENERATION = 0


def activate(source: CalibrationModel | str | Path | None = None) -> CalibrationModel:
    """Make a calibration the process-wide active model.

    ``source`` may be a model, a path, or ``None`` (load
    ``CALIB_<host>.json`` from the working directory).  From then on
    :func:`repro.gpusim.perfmodel.estimate_conv` predicts machine
    wallclock instead of modeled-GPU time, until :func:`deactivate`.
    """
    global _ACTIVE, _GENERATION
    if source is None:
        source = calibration_path()
    model = (
        source
        if isinstance(source, CalibrationModel)
        else CalibrationModel.load(source)
    )
    _ACTIVE = model
    _GENERATION += 1
    return model


def deactivate() -> None:
    """Drop the active calibration (back to the analytic device model)."""
    global _ACTIVE, _GENERATION
    _ACTIVE = None
    _GENERATION += 1


@contextlib.contextmanager
def activated(source: CalibrationModel | str | Path | None = None) -> Iterator[CalibrationModel]:
    """Scope an activation (tests, bench suites); restores the prior model."""
    prev = _ACTIVE
    model = activate(source)
    try:
        yield model
    finally:
        if prev is None:
            deactivate()
        else:
            activate(prev)


def active_model() -> CalibrationModel | None:
    """The explicitly activated calibration, or ``None``."""
    return _ACTIVE


def resolve_model() -> CalibrationModel:
    """Active calibration if any, else the hand-set default coefficients."""
    return _ACTIVE if _ACTIVE is not None else default_model()


def generation() -> int:
    """Activation epoch — changes whenever the active model does."""
    return _GENERATION


# --------------------------------------------------------------------------
# Measurement + fit
# --------------------------------------------------------------------------


def measure_suite(
    shapes: Sequence[tuple[int, int, int, int, int, int]] = CALIB_SMOKE_SHAPES,
    *,
    reps: int = 3,
    warmup: int = 1,
    seed: int = 20260808,
) -> list[CalibSample]:
    """Wallclock the compiled runtime over ``shapes``; one sample per shape.

    Warm-cache medians (executable + filter transforms resolved before the
    timed reps): the steady state the ledger, the serve scheduler and the
    autotuner all predict for.
    """
    from .. import runtime  # lazy: runtime is above gpusim in the import DAG
    from ..bench.harness import measure_ns

    rng = np.random.default_rng(seed)
    samples: list[CalibSample] = []
    for batch, ih, iw, ic, oc, alpha in shapes:
        x = rng.standard_normal((batch, ih, iw, ic)).astype(np.float32)
        w = rng.standard_normal((oc, 3, 3, ic)).astype(np.float32)
        timing = measure_ns(
            lambda x=x, w=w, alpha=alpha: runtime.convolve(x, w, alpha=alpha),
            reps=reps,
            warmup=warmup,
        )
        unit = ConvShape(
            batch=1, ih=ih, iw=iw, ic=ic, oc=oc, fh=3, fw=3, ph=1, pw=1, stride=1
        )
        plan = plan_convolution(unit, alpha=alpha)
        samples.append(
            CalibSample(
                label=f"{batch}x{ih}x{iw}x{ic}-{oc}a{alpha}",
                features=conv_features(plan, batch),
                measured_ns=timing.median_ns,
            )
        )
    return samples


def fit(samples: Sequence[CalibSample], *, host: str | None = None) -> CalibrationModel:
    """Non-negative least-squares fit of the coefficients over ``samples``.

    The solve minimises *relative* error — each row is divided by its
    measured ns, so ``min Σ ((pred - measured) / measured)²`` — because the
    gated metric is percent error and an absolute-ns objective would let
    the largest shape dominate the fit.  Columns are then scaled to unit
    max for conditioning (the terms span ~9 orders of magnitude); negative
    rates are physically meaningless, so the solve is NNLS (scipy) with a
    clamped-lstsq fallback.
    """
    if len(samples) < 2:
        raise ValueError(f"need at least 2 samples to fit, got {len(samples)}")
    a = np.asarray([[s.features.get(k, 0.0) for k in FEATURES] for s in samples])
    y = np.asarray([s.measured_ns for s in samples], dtype=float)
    weights = 1.0 / np.maximum(y, 1.0)
    aw = a * weights[:, None]
    yw = y * weights  # all ones, but kept explicit for the zero-guard above
    scale = np.maximum(aw.max(axis=0), 1e-12)
    try:
        from scipy.optimize import nnls

        scaled, _ = nnls(aw / scale, yw)
    except ImportError:  # pragma: no cover - scipy is a declared dependency
        scaled, *_ = np.linalg.lstsq(aw / scale, yw, rcond=None)
        scaled = np.maximum(scaled, 0.0)
    coeffs = {k: float(c / s) for k, c, s in zip(FEATURES, scaled, scale)}
    model = CalibrationModel(
        host=host if host is not None else host_key(),
        coeffs=coeffs,
        fitted=True,
        created=time.strftime("%Y-%m-%dT%H:%M:%S"),
    )
    errors = [prediction_error_pct(model, s) for s in samples]
    base = default_model()
    base_errors = [prediction_error_pct(base, s) for s in samples]
    model.stats.update(
        {
            "samples": len(samples),
            "labels": [s.label for s in samples],
            "mean_abs_error_pct": float(np.mean(errors)),
            "max_abs_error_pct": float(np.max(errors)),
            "uncalibrated_mean_abs_error_pct": float(np.mean(base_errors)),
            "uncalibrated_max_abs_error_pct": float(np.max(base_errors)),
        }
    )
    return model


def prediction_error_pct(model: CalibrationModel, sample: CalibSample) -> float:
    """Absolute prediction error of ``model`` on ``sample``, in percent."""
    if sample.measured_ns <= 0:
        return 0.0
    return abs(model.predict_ns(sample.features) - sample.measured_ns) / sample.measured_ns * 100.0


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def _fit_table(model: CalibrationModel, samples: Sequence[CalibSample]) -> str:
    from ..bench.harness import table

    base = default_model()
    rows = []
    for s in samples:
        rows.append(
            [
                s.label,
                f"{s.measured_ns / 1e6:.3f}",
                f"{model.predict_ns(s.features) / 1e6:.3f}",
                f"{prediction_error_pct(model, s):.1f}%",
                f"{base.predict_ns(s.features) / 1e6:.3f}",
                f"{prediction_error_pct(base, s):.1f}%",
            ]
        )
    return table(
        ["shape", "measured ms", "fitted ms", "err", "hand-set ms", "err"], rows
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gpusim.calibrate",
        description="Fit / inspect the per-machine wallclock cost model.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit_p = sub.add_parser("fit", help="measure the suite and fit CALIB_<host>.json")
    fit_p.add_argument("--reps", type=int, default=3, help="timed reps per shape")
    fit_p.add_argument(
        "--out", default=".", metavar="DIR", help="directory for CALIB_<host>.json"
    )
    fit_p.add_argument("--no-save", action="store_true", help="fit without persisting")
    fit_p.add_argument("--json", action="store_true", help="emit the model as JSON")

    show = sub.add_parser("show", help="print a calibration file")
    show.add_argument(
        "path", nargs="?", default=None, help="default: ./CALIB_<host>.json"
    )

    pred = sub.add_parser("predict", help="predict one conv's wallclock")
    pred.add_argument("--shape", required=True, metavar="NxHxWxC", help="input shape")
    pred.add_argument("--oc", type=int, default=None, help="output channels (= C)")
    pred.add_argument("--alpha", type=int, default=None)
    pred.add_argument("--variant", default=None)
    pred.add_argument(
        "--calib", default=None, metavar="PATH",
        help="calibration file (default: CALIB_<host>.json if present, else hand-set)",
    )

    args = parser.parse_args(argv)

    if args.command == "fit":
        samples = measure_suite(reps=args.reps)
        model = fit(samples)
        if args.json:
            print(json.dumps(model.to_json(), indent=2, sort_keys=True))
        else:
            print(_fit_table(model, samples))
            print(
                f"[calibrate] host {model.host}: mean abs error "
                f"{model.stats['mean_abs_error_pct']:.1f}% "
                f"(hand-set {model.stats['uncalibrated_mean_abs_error_pct']:.1f}%)"
            )
        if not args.no_save:
            path = model.save(calibration_path(args.out))
            print(f"[calibrate] wrote {path}", file=sys.stderr)
        return 0

    if args.command == "show":
        path = Path(args.path) if args.path else calibration_path()
        try:
            model = CalibrationModel.load(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(model.to_json(), indent=2, sort_keys=True))
        return 0

    # predict
    try:
        dims = [int(p) for p in re.split(r"[x,×]", args.shape.strip()) if p]
        if len(dims) != 4:
            raise ValueError(f"shape {args.shape!r} must be NxHxWxC")
        n, h, w_, c = dims
        shape = ConvShape(
            batch=n, ih=h, iw=w_, ic=c, oc=args.oc or c,
            fh=3, fw=3, ph=1, pw=1, stride=1,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.calib:
        try:
            model = CalibrationModel.load(args.calib)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        default_path = calibration_path()
        model = (
            CalibrationModel.load(default_path)
            if default_path.exists()
            else default_model()
        )
    ns = model.predict_conv_ns(shape, alpha=args.alpha, variant=args.variant)
    source = "fitted" if model.fitted else "hand-set defaults"
    print(
        f"[calibrate] {args.shape} -> oc={shape.oc}: predicted "
        f"{ns / 1e6:.3f} ms/call ({ns / 1e6 / shape.batch:.3f} ms/row, "
        f"{source}, host {model.host})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
