"""Per-iteration kernel trace simulator.

Where :mod:`repro.gpusim.perfmodel` is closed-form, this module *plays out*
one block's main loop phase by phase, counting SMEM transaction phases under
the actual §5.2 store/load patterns.  It exists for the A1 ablation: quantify
what the paper's padding, swizzling and Z-shaped laneIdx buy, by running the
same workflow with and without them.

The simulated phases per iteration (Algorithms 1/2):

1. store transformed filter tiles to ``Gs`` (one word-column per thread),
2. store transformed input tiles to ``Ds`` (optionally swizzled),
3. ``BK`` outer-product steps, each loading 2 x 128-bit from ``Gs``/``Ds``
   per thread (Z or linear lane arrangement),

plus, at the end, 4 rounds of ``Ys`` staging stores (optionally padded).
SMEM cost is counted in transaction phases (conflict degree 1 = ideal).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.variants import VariantSpec
from ..obs import counter_add
from .smem import SmemArray, conflict_degree, vectorized_conflict_degree
from .warp import (
    linear_lane_arrangement,
    swizzle_xi,
    thread_store_indices_ds,
    thread_store_indices_gs,
    z_lane_arrangement,
)

__all__ = ["TraceResult", "simulate_block_iteration", "simulate_output_stage"]


@dataclass(frozen=True)
class TraceResult:
    """SMEM transaction accounting of one simulated stage.

    ``phases`` counts executed SMEM transaction phases; ``ideal_phases`` is
    the conflict-free minimum; ``conflict_overhead`` is their ratio - 1.
    """

    phases: int
    ideal_phases: int

    @property
    def conflict_overhead(self) -> float:
        return self.phases / self.ideal_phases - 1.0

    def __add__(self, other: "TraceResult") -> "TraceResult":
        return TraceResult(self.phases + other.phases, self.ideal_phases + other.ideal_phases)


def _warp_lanes(first_thread: int, threads_x: int = 16):
    """Yield (tx, ty) of the 32 consecutive threads forming one warp."""
    for lane in range(32):
        t = first_thread + lane
        yield t % threads_x, t // threads_x


def simulate_block_iteration(
    spec: VariantSpec,
    *,
    swizzle_ds: bool = True,
    z_lanes: bool = True,
) -> TraceResult:
    """Count SMEM phases of one main-loop iteration of ``Gamma_alpha``.

    Parameters
    ----------
    spec:
        Kernel blocking (``variant_spec(alpha, n, r)``).
    swizzle_ds:
        Apply Gamma_8's ``Xi <- (Xi + 4*Xk) % 32`` store swizzle (§5.2); for
        alpha=16 this models the +4 padding of ``Ds[8][16][32+4]`` instead.
    z_lanes:
        Use the Figure 4 Z-shaped lane arrangement for outer-product loads
        (else naive row-major).
    """
    alpha, bn, bm, bk = spec.alpha, spec.bn, spec.bm, spec.bk
    ds_width = bm + (4 if (not _can_swizzle(spec) and swizzle_ds) else 0)
    gs = SmemArray("Gs", (bk, alpha, bn))
    ds = SmemArray("Ds", (bk, alpha, ds_width))
    arrange = z_lane_arrangement if z_lanes else linear_lane_arrangement

    phases = 0
    ideal = 0
    warps = spec.threads // 32
    # --- store phase ------------------------------------------------------
    for w in range(warps):
        g_addrs, d_addrs = [], []
        for tx, ty in _warp_lanes(w * 32):
            gk, gi = thread_store_indices_gs(tx, ty, bn)
            xk, xi = thread_store_indices_ds(tx, ty, bm)
            if swizzle_ds and _can_swizzle(spec):
                xi = swizzle_xi(xi, xk, bm)
            g_addrs.append(gs.address(gk, 0, gi % bn))
            d_addrs.append(ds.address(xk, 0, xi % ds_width))
        # Each thread stores an alpha-deep column; degree repeats per row.
        phases += (conflict_degree(g_addrs) + conflict_degree(d_addrs)) * alpha
        ideal += 2 * alpha

    # --- outer-product loads ------------------------------------------------
    for w in range(warps):
        for ik in range(bk):
            g_base, d_base = [], []
            for lane in range(32):
                gidx, didx = arrange(lane)
                if swizzle_ds and _can_swizzle(spec):
                    didx = (didx + 4 * ik) % bm
                g_base.append(gs.address(ik, 0, gidx % bn))
                d_base.append(ds.address(ik, 0, didx % ds_width))
            phases += vectorized_conflict_degree(g_base, 4) * 2  # 2x128-bit from Gs
            phases += vectorized_conflict_degree(d_base, 4) * 2  # 2x128-bit from Ds
            ideal += 4
    counter_add("smem.phases", phases, stage="iteration", alpha=spec.alpha)
    counter_add("smem.ideal_phases", ideal, stage="iteration", alpha=spec.alpha)
    return TraceResult(phases, ideal)


def _can_swizzle(spec: VariantSpec) -> bool:
    """Gamma_8 swizzles (SMEM full); Gamma_16 pads ``Ds`` instead (§5.2)."""
    return spec.alpha != 16


def simulate_output_stage(spec: VariantSpec, *, padded: bool = True) -> TraceResult:
    """Count SMEM phases of the 4-round ``Ys`` output staging (§5.1/5.2).

    The paper pads ``Ys`` to ``[8][32+1][16+4]`` (Gamma_8) /
    ``[2][16][16+1][16+4]`` (Gamma_16); without padding, the 128-bit staging
    stores of a warp pile onto a handful of banks.
    """
    alpha = spec.alpha
    rows = bm_half = spec.bn // 2
    inner = 16 + (4 if padded else 0)
    mid = bm_half + (1 if padded else 0)
    ys = SmemArray("Ys", (8 if alpha == 8 else alpha, mid, inner))
    phases = 0
    ideal = 0
    warps = spec.threads // 32
    for rnd in range(4):
        for w in range(warps):
            addrs = []
            for lane in range(32):
                ux = (w * 32 + lane) // 16 % (ys.shape[0])
                uy = (w * 32 + lane) % rows % mid
                addrs.append(ys.address(ux, uy, (4 * rnd) % inner))
            phases += vectorized_conflict_degree(addrs, 4)
            ideal += 1
    counter_add("smem.phases", phases, stage="output", alpha=spec.alpha)
    counter_add("smem.ideal_phases", ideal, stage="output", alpha=spec.alpha)
    return TraceResult(phases, ideal)
