"""SM occupancy calculation.

Standard CUDA occupancy arithmetic: how many blocks of a kernel fit on one
SM given its shared-memory, register, thread and block-slot limits, and the
resulting warp occupancy.  The paper leans on this twice: the alpha <= 24
SMEM budget (§4.1) and the ruse variant's parallelism loss ("the number of
active threads decreases, negatively impacting performance", §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["Occupancy", "occupancy_for"]

#: Register allocation granularity (warp-level, 256-register chunks).
_REG_ALLOC_UNIT = 256


@dataclass(frozen=True)
class Occupancy:
    """Occupancy of one kernel configuration on one device.

    ``limiter`` names the binding resource ("smem", "registers", "threads"
    or "blocks"); ``limits`` carries the per-resource block caps behind that
    verdict (every entry >= ``blocks_per_sm``), which is what an
    Nsight-style occupancy table displays.
    """

    blocks_per_sm: int
    active_threads: int
    active_warps: int
    occupancy: float
    limiter: str
    limits: tuple[tuple[str, int], ...] = ()

    @property
    def is_resident(self) -> bool:
        return self.blocks_per_sm >= 1

    def as_dict(self) -> dict[str, object]:
        """JSON-able view for profiler/export consumers."""
        return {
            "blocks_per_sm": self.blocks_per_sm,
            "active_threads": self.active_threads,
            "active_warps": self.active_warps,
            "occupancy": self.occupancy,
            "limiter": self.limiter,
            "limits": dict(self.limits),
        }


def occupancy_for(
    device: DeviceSpec,
    *,
    threads_per_block: int,
    smem_per_block: int,
    regs_per_thread: int,
) -> Occupancy:
    """Blocks per SM and warp occupancy for a kernel configuration.

    Raises
    ------
    ValueError
        If the block can never be resident (exceeds a per-block hardware
        limit) — the situation the paper's alpha <= 24 bound avoids.
    """
    if threads_per_block < 1:
        raise ValueError(f"threads_per_block must be >= 1, got {threads_per_block}")
    if smem_per_block > device.max_smem_per_block:
        raise ValueError(
            f"block needs {smem_per_block} B SMEM > device cap {device.max_smem_per_block} B"
        )
    if threads_per_block > 1024:
        raise ValueError(f"threads_per_block {threads_per_block} > 1024 hardware cap")

    limits = {
        "smem": device.smem_per_sm // smem_per_block if smem_per_block > 0 else device.max_blocks_per_sm,
        "registers": _register_limit(device, threads_per_block, regs_per_thread),
        "threads": device.max_threads_per_sm // threads_per_block,
        "blocks": device.max_blocks_per_sm,
    }
    # A resource the kernel does not consume (0 B SMEM, 0 registers) has its
    # cap clamped to the block-slot limit above; it must not be *named* the
    # limiter when it ties with a real cap.
    contenders = {
        k: v
        for k, v in limits.items()
        if not (k == "smem" and smem_per_block <= 0)
        and not (k == "registers" and regs_per_thread <= 0)
    }
    limiter = min(contenders, key=contenders.get)  # type: ignore[arg-type]
    blocks = limits[limiter]
    if blocks < 1:
        raise ValueError(
            f"kernel cannot be resident: limited by {limiter} "
            f"(threads={threads_per_block}, smem={smem_per_block}, regs={regs_per_thread})"
        )
    active_threads = blocks * threads_per_block
    warps = active_threads // device.warp_size
    return Occupancy(
        blocks_per_sm=blocks,
        active_threads=active_threads,
        active_warps=warps,
        occupancy=active_threads / device.max_threads_per_sm,
        limiter=limiter,
        limits=tuple(sorted(limits.items())),
    )


def _register_limit(device: DeviceSpec, threads: int, regs_per_thread: int) -> int:
    """Blocks allowed by the register file (warp-granular allocation)."""
    if regs_per_thread <= 0:
        return device.max_blocks_per_sm
    warps = -(-threads // device.warp_size)
    regs_per_warp = regs_per_thread * device.warp_size
    regs_per_warp = -(-regs_per_warp // _REG_ALLOC_UNIT) * _REG_ALLOC_UNIT
    regs_per_block = warps * regs_per_warp
    return device.regs_per_sm // regs_per_block
