"""Event-level timeline of one block's main loop (§5.1's pipeline).

Where :mod:`repro.gpusim.perfmodel` is closed-form and
:mod:`repro.gpusim.trace` counts SMEM phases, this module plays out the
*temporal* structure of Algorithms 1/2: per iteration, a block must

1. load the next filter/input tiles from global memory (latency ``L`` +
   bandwidth term),
2. transform them (ALU cycles),
3. run ``BK`` outer-product steps (FMA cycles).

With the double-buffered SMEM of the alpha in {4, 8} kernels, step 1+2 of
iteration ``i+1`` overlaps step 3 of iteration ``i`` (one ``__syncthreads``
per buffer swap); the single-buffered alpha=16 kernels must finish the
outer product before overwriting the buffer, exposing the load latency once
per iteration.  Multiple resident blocks interleave on the SM, hiding each
other's stalls.

The output is cycles per iteration and a pipeline utilisation number; the
A1b ablation uses it to show what double buffering is worth — a quantity
the closed-form model only carries as a calibration constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.variants import VariantSpec

__all__ = ["TimelineResult", "simulate_block_timeline"]

#: Global-memory latency in cycles (Ampere-class, L2 hit ~ 250, miss ~ 500).
GLOBAL_LATENCY = 350
#: FMA throughput per SM per cycle (128 FP32 lanes on Ampere/Ada).
FMA_PER_CYCLE = 128
#: Transform ALU ops per cycle (shares the FMA pipes).
ALU_PER_CYCLE = 128
#: Global-load words per cycle per SM (bandwidth share).
LOAD_WORDS_PER_CYCLE = 16


@dataclass(frozen=True)
class TimelineResult:
    """Timing of one block's full iteration stream on one SM.

    ``cycles_per_iteration`` is the steady-state cost; ``utilisation`` is
    FMA-issue occupancy of the outer-product pipeline (1.0 = never starved);
    ``exposed_latency`` is the per-iteration stall the buffering scheme
    fails to hide.
    """

    cycles_per_iteration: float
    compute_cycles: float
    load_cycles: float
    transform_cycles: float
    utilisation: float
    exposed_latency: float

    def phase_fractions(self) -> dict[str, float]:
        """Issued-phase shares of one steady-state iteration.

        ``outer_product`` + ``exposed_stall`` sum to 1 of the critical path;
        ``tile_load`` and ``transform`` report how much of that stall budget
        each overlapped phase *demands* (they can exceed the stall when the
        buffering scheme hides them, which is the §5.1 point).
        """
        per_iter = self.cycles_per_iteration or 1.0
        return {
            "outer_product": self.compute_cycles / per_iter,
            "exposed_stall": self.exposed_latency / per_iter,
            "tile_load": self.load_cycles / per_iter,
            "transform": self.transform_cycles / per_iter,
        }

    def as_dict(self) -> dict[str, float]:
        """JSON-able view for profiler/export consumers."""
        return {
            "cycles_per_iteration": self.cycles_per_iteration,
            "compute_cycles": self.compute_cycles,
            "load_cycles": self.load_cycles,
            "transform_cycles": self.transform_cycles,
            "utilisation": self.utilisation,
            "exposed_latency": self.exposed_latency,
        }


def _iteration_costs(spec: VariantSpec, resident_blocks: int) -> tuple[float, float, float]:
    """(compute, load, transform) cycles for one iteration of one block,
    given ``resident_blocks`` sharing the SM's issue bandwidth."""
    share = max(1, resident_blocks)
    # Outer product: alpha * BN * BM * BK FMAs per iteration.
    fmas = spec.alpha * spec.bn * spec.bm * spec.bk
    compute = fmas / (FMA_PER_CYCLE / share)
    # Loads: BM input tiles (alpha words, fewer for ruse) + BN filter rows.
    from ..core.variants import input_items_per_tile

    words = (spec.bm * input_items_per_tile(spec.alpha, spec.r, spec.variant)
             + spec.bn * spec.r) * spec.bk
    load = GLOBAL_LATENCY / share + words / (LOAD_WORDS_PER_CYCLE / share)
    # Transforms: ~1.5 ops per matrix entry with §5.3 pairing.
    t_ops = 1.5 * (spec.bm * spec.alpha**2 + spec.bn * spec.alpha * spec.r) * spec.bk / spec.alpha
    transform = t_ops / (ALU_PER_CYCLE / share)
    return compute, load, transform


def simulate_block_timeline(
    spec: VariantSpec,
    iterations: int,
    *,
    resident_blocks: int = 2,
    force_single_buffer: bool = False,
) -> TimelineResult:
    """Play out ``iterations`` main-loop steps of one block.

    Parameters
    ----------
    spec:
        Kernel variant (decides double buffering unless forced).
    iterations:
        ``FH * ceil(IC / BK)`` (use :func:`repro.gpusim.blocking.iterations_per_block`).
    resident_blocks:
        Blocks sharing the SM (their work hides each other's latency:
        exposed stalls shrink by the co-residency factor).
    force_single_buffer:
        Ablation switch: run a double-buffered kernel as if single-buffered.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    compute, load, transform = _iteration_costs(spec, resident_blocks)
    double = spec.double_buffered and not force_single_buffer

    if double:
        # load+transform of iteration i+1 overlaps compute of iteration i:
        # steady-state cost = max(compute, load + transform); co-resident
        # blocks absorb the remainder of any stall.
        stall = max(0.0, (load + transform) - compute)
        exposed = stall / max(1, resident_blocks)
        per_iter = compute + exposed
        # First iteration's fill is unavoidable.
        total = (load + transform) + per_iter * iterations
    else:
        # Single buffer: the outer product cannot start until the tiles are
        # stored, and the next load cannot start until the buffer is free —
        # only co-resident blocks hide anything.
        serial = compute + load + transform
        hidden = (load + transform) * (1 - 1 / max(1, resident_blocks))
        per_iter = serial - hidden
        exposed = per_iter - compute
        total = per_iter * iterations + load + transform

    return TimelineResult(
        cycles_per_iteration=total / iterations,
        compute_cycles=compute,
        load_cycles=load,
        transform_cycles=transform,
        utilisation=compute / (total / iterations),
        exposed_latency=max(0.0, exposed),
    )
