"""GPU device specifications for the performance model.

The paper evaluates on an RTX 3060 Ti (Ampere, GA104) and an RTX 4090
(Ada Lovelace, AD102) (§6.1).  The numbers below are the public datasheet
values that the performance model consumes; nothing here is fitted.

A note on what "peak" means: the paper reports Gflop/s as *standard
convolution* FLOPs divided by time, so a Winograd kernel that multiplies
``nr/(n+r-1)`` times less can legitimately report above hardware peak — e.g.
Gamma_16(8,9) reaches ~33 Tflop/s on a 16.2-Tflop/s 3060 Ti.  The model
computes time from the *actual* arithmetic and memory work and converts back.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "RTX3060TI", "RTX4090", "DEVICES"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of one GPU.

    Attributes
    ----------
    name, arch:
        Marketing name and architecture family.
    sm_count:
        Streaming multiprocessors.
    peak_fp32_gflops:
        FP32 FMA peak (2 ops/FMA counted).
    dram_bw_gbs, l2_bw_gbs:
        DRAM and aggregate L2 bandwidths in GB/s.
    l2_bytes:
        L2 capacity.
    smem_per_sm, max_smem_per_block:
        Shared-memory capacity per SM and per-block cap (the 49152 B the
        paper's alpha budget is derived from, §4.1).
    regs_per_sm:
        32-bit registers per SM.
    max_threads_per_sm, max_blocks_per_sm:
        Occupancy limits.
    warp_size, smem_banks:
        Execution/bank geometry (32/32 on both architectures).
    launch_overhead_us:
        Fixed per-kernel-launch cost, charged per boundary segment.
    """

    name: str
    arch: str
    sm_count: int
    peak_fp32_gflops: float
    dram_bw_gbs: float
    l2_bw_gbs: float
    l2_bytes: int
    smem_per_sm: int
    max_smem_per_block: int
    regs_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    warp_size: int = 32
    smem_banks: int = 32
    launch_overhead_us: float = 4.0

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size


#: Ampere GA104, 38 SMs @ ~1.67 GHz, 2 FP32 pipes: ~16.2 Tflop/s.
RTX3060TI = DeviceSpec(
    name="RTX3060Ti",
    arch="Ampere",
    sm_count=38,
    peak_fp32_gflops=16_200.0,
    dram_bw_gbs=448.0,
    l2_bw_gbs=1_800.0,
    l2_bytes=4 * 1024 * 1024,
    smem_per_sm=102_400,
    max_smem_per_block=49_152,
    regs_per_sm=65_536,
    max_threads_per_sm=1_536,
    max_blocks_per_sm=16,
)

#: Ada AD102, 128 SMs @ ~2.52 GHz: ~82.6 Tflop/s, 72 MiB L2.
RTX4090 = DeviceSpec(
    name="RTX4090",
    arch="Ada",
    sm_count=128,
    peak_fp32_gflops=82_600.0,
    dram_bw_gbs=1_008.0,
    l2_bw_gbs=5_000.0,
    l2_bytes=72 * 1024 * 1024,
    smem_per_sm=102_400,
    max_smem_per_block=49_152,
    regs_per_sm=65_536,
    max_threads_per_sm=1_536,
    max_blocks_per_sm=24,
)

DEVICES = {d.name: d for d in (RTX3060TI, RTX4090)}
