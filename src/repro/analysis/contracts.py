"""Pass 1 — plan contract checker (§4.1 / §5.5 / §5.6 / §5.7).

Statically verifies the arithmetic and structural invariants a
:class:`repro.core.planner.ConvPlan` must satisfy before it may execute:

* every Winograd kernel's ``alpha = n + r - 1`` and ``r`` matching the
  problem's filter width (PLAN001);
* the NHWC stride/padding envelope of the fused kernels (PLAN002);
* the §5.5 segment chain tiling ``[0, OW)`` exactly once — sorted,
  disjoint, gap-free (PLAN003) — with every Winograd segment width
  divisible by its kernel's coverage (PLAN004);
* GEMM-tail structure: at most one, trailing, and genuinely irreducible —
  i.e. narrower than the smallest registered coverage for the width, so the
  tail really is the remainder the Gamma chain cannot absorb (PLAN005/006);
* the §5.6 c64 channel contract (PLAN007).

All checks are pure functions of the plan object; nothing is executed.
"""

from __future__ import annotations

from ..core.boundary import Segment, segment_chain
from ..core.planner import ConvPlan
from .findings import Finding
from .rules import make_finding

__all__ = ["plan_contract_findings"]


def plan_contract_findings(plan: ConvPlan) -> list[Finding]:
    """All PLAN-rule findings of one plan (empty list = contract holds)."""
    findings: list[Finding] = []
    shape = plan.shape
    if plan.algorithm != "im2col-winograd":
        return findings  # GEMM plans carry no Winograd contract to check

    # --- PLAN002: stride / padding envelope --------------------------------
    if shape.stride != 1:
        findings.append(
            make_finding(
                "PLAN002",
                f"Winograd plan with stride {shape.stride}; the Gamma kernels are unit-stride only",
                context={"stride": shape.stride},
            )
        )
    if shape.pw >= shape.fw or shape.ph >= shape.fh:
        findings.append(
            make_finding(
                "PLAN002",
                f"padding (ph={shape.ph}, pw={shape.pw}) reaches the filter extent "
                f"({shape.fh}x{shape.fw}); leading tiles would be all-padding",
                context={"ph": shape.ph, "pw": shape.pw, "fh": shape.fh, "fw": shape.fw},
            )
        )

    # --- PLAN001: alpha arithmetic per kernel ------------------------------
    for i, seg in enumerate(plan.segments):
        if seg.is_gemm:
            continue
        kernel = seg.kernel
        spec = kernel.spec  # type: ignore[union-attr]
        if spec.alpha != spec.n + spec.r - 1:
            findings.append(
                make_finding(
                    "PLAN001",
                    f"{spec.name}: alpha={spec.alpha} != n+r-1={spec.n + spec.r - 1}",
                    location={"segment": i, "kernel": spec.name},
                    context={"alpha": spec.alpha, "n": spec.n, "r": spec.r},
                )
            )
        if spec.r != shape.fw:
            findings.append(
                make_finding(
                    "PLAN001",
                    f"{spec.name}: kernel filter width r={spec.r} != problem FW={shape.fw}",
                    location={"segment": i, "kernel": spec.name},
                    context={"r": spec.r, "fw": shape.fw},
                )
            )

    # --- PLAN003: exact disjoint cover of [0, OW) --------------------------
    findings.extend(_cover_findings(plan.segments, shape.ow))

    # --- PLAN004: coverage divisibility ------------------------------------
    for i, seg in enumerate(plan.segments):
        if seg.is_gemm:
            continue
        cov = seg.kernel.spec.coverage  # type: ignore[union-attr]
        if seg.width % cov != 0:
            findings.append(
                make_finding(
                    "PLAN004",
                    f"segment {i} ({seg.name}): width {seg.width} not divisible by coverage {cov}",
                    location={"segment": i, "kernel": seg.name},
                    context={"width": seg.width, "coverage": cov},
                )
            )

    # --- PLAN005/PLAN006: GEMM tail structure ------------------------------
    findings.extend(_tail_findings(plan))

    # --- PLAN007: c64 channel contract -------------------------------------
    for i, seg in enumerate(plan.segments):
        if seg.is_gemm:
            continue
        spec = seg.kernel.spec  # type: ignore[union-attr]
        if spec.variant == "c64" and (shape.ic % 64 != 0 or shape.oc % 64 != 0):
            findings.append(
                make_finding(
                    "PLAN007",
                    f"{spec.name} on IC={shape.ic}, OC={shape.oc}: c64 assumes both are multiples of 64",
                    location={"segment": i, "kernel": spec.name},
                    context={"ic": shape.ic, "oc": shape.oc},
                )
            )
    return findings


def _cover_findings(segments: tuple[Segment, ...], ow: int) -> list[Finding]:
    """PLAN003: segments must tile [0, ow) exactly once, in order."""
    findings: list[Finding] = []
    if not segments:
        return [
            make_finding(
                "PLAN003",
                f"Winograd plan with no segments; OW={ow} is uncovered",
                context={"ow": ow},
            )
        ]
    pos = 0
    for i, seg in enumerate(segments):
        if seg.width < 1:
            findings.append(
                make_finding(
                    "PLAN003",
                    f"segment {i} ({seg.name}) has width {seg.width} < 1",
                    location={"segment": i},
                    context={"width": seg.width},
                )
            )
            continue
        if seg.start != pos:
            kind = "overlaps the previous segment" if seg.start < pos else "leaves a gap"
            findings.append(
                make_finding(
                    "PLAN003",
                    f"segment {i} ({seg.name}) starts at {seg.start}, expected {pos}: {kind}",
                    location={"segment": i},
                    context={"start": seg.start, "expected": pos},
                )
            )
        pos = max(pos, seg.start) + seg.width
    if pos != ow:
        kind = "past OW" if pos > ow else "short of OW"
        findings.append(
            make_finding(
                "PLAN003",
                f"segments cover [0, {pos}) which is {kind} = {ow}",
                context={"covered": pos, "ow": ow},
            )
        )
    return findings


def _tail_findings(plan: ConvPlan) -> list[Finding]:
    """PLAN005 (structure) and PLAN006 (reducibility) for GEMM segments."""
    findings: list[Finding] = []
    gemm = [(i, s) for i, s in enumerate(plan.segments) if s.is_gemm]
    if not gemm:
        return findings
    if len(gemm) > 1:
        findings.append(
            make_finding(
                "PLAN005",
                f"{len(gemm)} GEMM segments; the §5.5 design allows exactly one tail",
                context={"gemm_segments": [i for i, _ in gemm]},
            )
        )
    last_index = len(plan.segments) - 1
    for i, seg in gemm:
        if i != last_index:
            findings.append(
                make_finding(
                    "PLAN005",
                    f"GEMM segment at position {i} is not the trailing segment",
                    location={"segment": i},
                    context={"position": i, "last": last_index},
                )
            )
    # Reducibility: the tail must be narrower than the smallest coverage of
    # the width's kernel chain, else a Gamma kernel could have absorbed it.
    try:
        min_cov = min(k.spec.coverage for k in segment_chain(plan.shape.fw))
    except ValueError:
        return findings  # no registered chain for this width; PLAN002 territory
    for i, seg in gemm:
        if seg.width >= min_cov:
            findings.append(
                make_finding(
                    "PLAN006",
                    f"GEMM tail width {seg.width} >= smallest chain coverage {min_cov}; "
                    f"a Gamma kernel could absorb {seg.width - seg.width % min_cov} of its columns",
                    location={"segment": i},
                    context={"width": seg.width, "min_coverage": min_cov},
                )
            )
    return findings
