"""Concurrency sanitizer for the host stack (runtime / serve / obs).

Execution-free AST passes over the threaded host code, mirroring the
kernel sanitizer's architecture (typed findings, rule registry, strict CI
gate) for a different invariant universe:

* :mod:`.lockdiscipline` — LOCK rules: every guarded attribute access sits
  under its registered lock (§H1);
* :mod:`.lockorder` — ORD rules: the static acquisition graph is acyclic
  and nothing opaque (callbacks, blocking joins) runs under a lock (§H2);
* :mod:`.loophygiene` — LOOP rules: ``async def`` bodies never block the
  event loop (§H3);
* :mod:`.witness` — WIT rules: an opt-in runtime harness that records real
  acquisition orders and guarded accesses during threaded stress tests and
  cross-checks them against the static model (§H4).

:func:`analyze_concurrency` is the entry point the CLI and CI use; the
guard registry in :mod:`.registry` is the declaration layer.
"""

from .engine import (
    DEFAULT_TARGETS,
    analyze_concurrency,
    fingerprint,
    load_baseline,
    write_baseline,
)
from .lockdiscipline import lock_discipline_findings
from .lockorder import LockOrderGraph, build_lock_order_graph, lock_order_findings
from .loophygiene import loop_hygiene_findings
from .model import ConcurrencyModel, model_from_sources, scan_packages
from .registry import GUARDS, GuardSpec, guarded_by
from .witness import LockWitness, WitnessLock

__all__ = [
    "DEFAULT_TARGETS",
    "analyze_concurrency",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "lock_discipline_findings",
    "LockOrderGraph",
    "build_lock_order_graph",
    "lock_order_findings",
    "loop_hygiene_findings",
    "ConcurrencyModel",
    "model_from_sources",
    "scan_packages",
    "GUARDS",
    "GuardSpec",
    "guarded_by",
    "LockWitness",
    "WitnessLock",
]
