"""The guarded-by registry: which lock protects which shared attribute.

This is the concurrency sanitizer's single source of truth, the host-side
analogue of the rule registry in :mod:`repro.analysis.rules`.  Each
:class:`GuardSpec` declares one class's discipline: *these attributes are
only touched under this lock*.  The lock-discipline pass then proves every
``self.<attr>`` access in the class (and its subclasses) sits inside a
``with self.<lock>:`` block, and the dynamic witness checks the same
contract against real thread interleavings.

Why a central registry instead of decorating the production classes with
``@guarded_by`` directly: :mod:`repro.analysis` imports :mod:`repro.obs`
for its findings counters, so obs (and the runtime/serve modules that
import obs) decorating themselves from the analysis package would be an
import cycle.  New code outside that cycle is welcome to use the
:func:`guarded_by` decorator — the AST scanner picks it up and merges it
with the seeds below; for the existing stack the registry *is* the
annotation layer.

Deliberately unguarded state (reviewed, not forgotten):

* ``Scheduler._batcher``/``_wake``/``_inflight``/``_running`` — event-loop
  confined; only ``stop``/``submit`` touch them from the loop thread.
* ``RegisteredModel.model`` and the warmup-written fields — published once
  by ``register``; ``infer_rows`` reads them lock-free by design (the
  model is frozen in eval mode).
* ``Tracer.origin_s`` — a scalar written under the lock, read by exporters
  that already snapshot the forest.
* ``SLOTracker`` — has no lock of its own; every touch runs under
  ``Scheduler._stats_lock`` (which is why ``_slo`` appears in the
  Scheduler spec rather than in a spec of its own).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = ["GuardSpec", "GUARDS", "guarded_by", "specs_for_model"]

_T = TypeVar("_T")


@dataclass(frozen=True)
class GuardSpec:
    """One class's lock discipline: ``lock`` guards ``attrs``.

    ``assume_held`` names helper methods whose docstring contract is
    "caller holds the lock" — the pass analyzes their bodies with the lock
    already in the held-set instead of flagging them.
    """

    module: str
    cls: str
    lock: str
    attrs: tuple[str, ...]
    assume_held: tuple[str, ...] = ()
    note: str = ""

    @property
    def lock_node(self) -> str:
        return f"{self.module}.{self.cls}.{self.lock}"


def guarded_by(
    lock: str, *attrs: str, assume_held: tuple[str, ...] = ()
) -> Callable[[_T], _T]:
    """Class decorator declaring ``lock`` guards ``attrs``.

    A no-op at runtime; the AST scanner reads the decoration and merges it
    into the guard registry, so classes outside the obs import cycle can
    carry their discipline inline.
    """

    def deco(cls: _T) -> _T:
        return cls

    return deco


#: The seeded lock inventory: every threading.Lock/RLock in the runtime,
#: serve and obs packages, with the attributes its class guards with it.
GUARDS: tuple[GuardSpec, ...] = (
    # -- repro.runtime -------------------------------------------------------
    GuardSpec(
        "repro.runtime.cache",
        "ExecutableCache",
        "_lock",
        ("_entries", "_hits", "_misses", "_evictions", "_capacity"),
        assume_held=("_evict_over_capacity",),
        note="bounded LRU of compiled executables; resize races inserts",
    ),
    GuardSpec(
        "repro.runtime.engine",
        "ExecutionConfig",
        "_pool_lock",
        ("_pool",),
        note="lazy pool build vs idempotent shutdown; join happens outside",
    ),
    GuardSpec(
        "repro.runtime.executable",
        "ConvExecutable",
        "_flock",
        ("_filters",),
        note="weight-version-keyed filter-transform LRU",
    ),
    GuardSpec(
        "repro.runtime.tuningcache",
        "ActiveTuning",
        "_lock",
        ("_table", "_generation", "_guards"),
        note=(
            "active tuning table + activation epoch + per-entry never-worse "
            "guard state, swapped atomically by activate()/deactivate(); "
            "lookups race tuned dispatches feeding the guard"
        ),
    ),
    # -- repro.serve ---------------------------------------------------------
    GuardSpec(
        "repro.serve.registry",
        "ModelRegistry",
        "_lock",
        ("_models",),
        note="RLock: register may re-enter via warmup paths",
    ),
    GuardSpec(
        "repro.serve.registry",
        "RegisteredModel",
        "_lock",
        ("weight_version",),
        note="weight reloads vs describe(); model itself is frozen/eval",
    ),
    GuardSpec(
        "repro.serve.scheduler",
        "Scheduler",
        "_stats_lock",
        ("_stats", "_slo"),
        note="loop-side bookkeeping vs status probes from other threads",
    ),
    # -- repro.serve.cluster -------------------------------------------------
    GuardSpec(
        "repro.serve.cluster.shm",
        "SlabRing",
        "_lock",
        ("_free", "_tags", "_next_tag", "_closed"),
        note=(
            "slot free-list + lease-tag table; router event loop leases "
            "while witness threads probe — data copies stay outside the lock"
        ),
    ),
    GuardSpec(
        "repro.serve.cluster.membership",
        "Membership",
        "_lock",
        ("_workers",),
        note=(
            "worker state table: event-loop transitions vs stats/test "
            "probes from other threads (router request state itself is "
            "event-loop confined and deliberately lock-free)"
        ),
    ),
    # -- repro.obs -----------------------------------------------------------
    GuardSpec(
        "repro.obs.tracer",
        "Tracer",
        "_lock",
        ("roots", "_stacks"),
        assume_held=("_enforce_root_limit",),
        note="span forest; worker threads record concurrently",
    ),
    GuardSpec(
        "repro.obs.telemetry",
        "TraceStore",
        "_lock",
        ("_traces",),
        note="bounded ring of request traces",
    ),
    GuardSpec(
        "repro.obs.metrics",
        "Counter",
        "_lock",
        ("_values",),
        note="read-modify-write increments from pool workers",
    ),
    GuardSpec(
        "repro.obs.metrics",
        "Gauge",
        "_lock",
        ("_values",),
        note="last-write-wins sets from pool workers",
    ),
    GuardSpec(
        "repro.obs.metrics",
        "Histogram",
        "_lock",
        ("_values",),
        note="streaming summaries; WindowedHistogram shares this lock",
    ),
    GuardSpec(
        "repro.obs.metrics",
        "WindowedHistogram",
        "_lock",
        ("_buckets", "_window"),
        note="bucket counts + slice ring under the inherited Histogram lock",
    ),
    GuardSpec(
        "repro.obs.metrics",
        "MetricsRegistry",
        "_lock",
        ("_metrics",),
        note="get-or-create instrument table",
    ),
    GuardSpec(
        "repro.obs.perfledger",
        "PerfLedger",
        "_lock",
        ("_entries", "_samples"),
        note="LRU entries + raw-sample ring, recorded from worker threads",
    ),
)


def specs_for_model() -> tuple[GuardSpec, ...]:
    """The seeded specs (alias used by the passes; tests override it)."""
    return GUARDS
