"""LOCK pass: every guarded attribute access happens under its lock.

For each :class:`~repro.analysis.concurrency.registry.GuardSpec` (seeded
plus ``@guarded_by``-decorated), walk every method of the guarded class and
its subclasses tracking the statically-held lock set, and flag accesses of
the guarded attributes outside the lock:

* LOCK001 — a write (assignment, augmented assignment, ``del``, or a
  mutator-method call like ``.clear()``/``.append()``) outside the lock;
* LOCK002 — a read outside the lock;
* LOCK003 — registry rot: the registered class, lock, attribute or
  ``assume_held`` method no longer exists in source;
* LOCK004 — a ``threading.Lock``/``RLock`` site with no registration at
  all (new locks must declare what they guard).

Exemptions, matching how single-threaded construction and internal helpers
actually work:

* ``__init__`` / ``__post_init__`` bodies (no concurrent access before the
  object is published);
* ``assume_held`` methods are analyzed with the lock pre-held (their
  documented contract is "caller holds the lock");
* identity tests (``self._slo is None``) — they read the reference, not
  the guarded state, and CPython attribute loads are atomic.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..rules import make_finding
from .model import ClassInfo, ConcurrencyModel, function_events
from .registry import GUARDS, GuardSpec

__all__ = ["lock_discipline_findings", "collect_specs"]

_INIT_METHODS = frozenset({"__init__", "__post_init__"})


def collect_specs(
    model: ConcurrencyModel, specs: tuple[GuardSpec, ...] = GUARDS
) -> list[GuardSpec]:
    """Seeded specs plus any ``@guarded_by`` decorations found in source."""
    out = list(specs)
    declared = {(s.module, s.cls) for s in specs}
    for mod in model.modules.values():
        for cls in mod.classes.values():
            for deco in cls.guard_decorators:
                if (cls.module, cls.name) in declared:
                    continue
                out.append(
                    GuardSpec(
                        module=cls.module,
                        cls=cls.name,
                        lock=deco["lock"],
                        attrs=tuple(deco.get("attrs", ())),
                        assume_held=tuple(deco.get("assume_held", ())),
                        note="declared via @guarded_by",
                    )
                )
    return out


def _subclasses_of(model: ConcurrencyModel, target: ClassInfo) -> list[ClassInfo]:
    """``target`` plus every scanned class that inherits from it."""
    out = []
    for mod in model.modules.values():
        for cls in mod.classes.values():
            if any(c.key == target.key for c in model.iter_bases(cls)):
                out.append(cls)
    return out


def lock_discipline_findings(
    model: ConcurrencyModel, specs: tuple[GuardSpec, ...] = GUARDS
) -> list[Finding]:
    findings: list[Finding] = []
    all_specs = collect_specs(model, specs)
    covered_locks: set[str] = set()

    for spec in all_specs:
        cls = model.class_by_key(f"{spec.module}.{spec.cls}")
        if cls is None:
            findings.append(
                make_finding(
                    "LOCK003",
                    f"registered class {spec.module}.{spec.cls} not found in source",
                    location={"module": spec.module, "qualname": spec.cls},
                    context={"detail": "missing-class"},
                )
            )
            continue
        site = model.find_lock(cls, spec.lock)
        if site is None:
            findings.append(
                make_finding(
                    "LOCK003",
                    f"{spec.module}.{spec.cls} has no lock attribute {spec.lock!r}",
                    location={"module": spec.module, "qualname": spec.cls},
                    context={"detail": f"missing-lock:{spec.lock}"},
                )
            )
            continue
        covered_locks.add(site.node_id)
        for helper in spec.assume_held:
            if model.find_method(cls, helper) is None:
                findings.append(
                    make_finding(
                        "LOCK003",
                        f"assume_held method {spec.cls}.{helper} not found in source",
                        location={"module": spec.module, "qualname": spec.cls},
                        context={"detail": f"missing-assume-held:{helper}"},
                    )
                )

        seen_attrs: set[str] = set()
        for sub in _subclasses_of(model, cls):
            for name, method in sub.methods.items():
                if name in _INIT_METHODS:
                    for attr in spec.attrs:
                        if _assigns(sub, name, attr):
                            seen_attrs.add(attr)
                    continue
                entry_held = (site.node_id,) if name in spec.assume_held else ()
                events = function_events(model, sub, method, entry_held=entry_held)
                for access in events.accesses:
                    if access.attr not in spec.attrs:
                        continue
                    seen_attrs.add(access.attr)
                    if access.identity_test or site.node_id in access.held:
                        continue
                    rule = "LOCK001" if access.write else "LOCK002"
                    kind = "written" if access.write else "read"
                    findings.append(
                        make_finding(
                            rule,
                            f"{sub.name}.{name} {kind} guarded attribute "
                            f"{access.attr!r} without holding {spec.lock}",
                            location={
                                "module": sub.module,
                                "qualname": f"{sub.name}.{name}",
                                "line": access.lineno,
                            },
                            context={
                                "detail": access.attr,
                                "lock": site.node_id,
                                "guard_class": spec.cls,
                            },
                        )
                    )
        for attr in spec.attrs:
            known = any(
                attr in c.attr_types or attr in c.lock_attrs
                for c in model.iter_bases(cls)
            )
            if attr not in seen_attrs and not known:
                findings.append(
                    make_finding(
                        "LOCK003",
                        f"registered attribute {spec.cls}.{attr} never appears in source",
                        location={"module": spec.module, "qualname": spec.cls},
                        context={"detail": f"missing-attr:{attr}"},
                    )
                )

    for node_id, site in sorted(model.lock_inventory().items()):
        if node_id not in covered_locks:
            findings.append(
                make_finding(
                    "LOCK004",
                    f"lock {node_id} ({site.kind}) has no guard registration",
                    location={
                        "module": site.module,
                        "qualname": f"{site.cls}.{site.attr}",
                        "line": site.lineno,
                    },
                    context={"detail": node_id},
                )
            )
    return findings


def _assigns(cls: ClassInfo, method_name: str, attr: str) -> bool:
    """Whether ``cls.<method>`` assigns ``self.<attr>`` (init coverage)."""
    method = cls.methods.get(method_name)
    if method is None:
        return False
    for node in ast.walk(method.node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr == attr
            and isinstance(node.ctx, ast.Store)
        ):
            return True
    return False
