"""WIT pass: runtime witness of the static concurrency model.

The static passes prove discipline from source; this module checks the
proofs against reality.  A :class:`LockWitness` instruments live objects:

* :meth:`LockWitness.wrap` replaces a ``threading.Lock``/``RLock``
  attribute with a :class:`WitnessLock` proxy that records every
  *observed* acquisition order — "thread T acquired B while holding A"
  becomes the dynamic edge ``A -> B``;
* :meth:`LockWitness.watch` swaps the object's class for a dynamic
  subclass whose ``__getattribute__``/``__setattr__`` verify that the
  object's witnessed lock is held by the accessing thread for every
  guarded attribute touch.

After a threaded stress run, :meth:`LockWitness.cross_check` compares the
dynamic evidence against the static :class:`~.lockorder.LockOrderGraph`:

* WIT001 — an observed order edge between two statically-known locks that
  the static graph does not contain (even transitively): the static
  model rotted and can no longer be trusted to prove deadlock-freedom;
* WIT002 — a guarded attribute was touched by a thread not holding its
  lock: the discipline the LOCK pass proves for ``self.<attr>`` sites
  was escaped through some path the self-centric lint cannot see
  (cross-object access, exported aliases).

Lock node IDs are derived by walking the object's MRO against the static
lock inventory, so a ``WindowedHistogram`` instance witnesses as
``repro.obs.metrics.Histogram._lock`` — the same canonical name the static
passes use, which is what makes the cross-check exact.

Everything here is opt-in test harness: production code never imports it.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

from ..findings import Finding
from ..rules import make_finding
from .lockorder import LockOrderGraph

__all__ = ["WitnessLock", "LockWitness"]


class WitnessLock:
    """Transparent lock proxy that reports acquisitions to its witness."""

    def __init__(self, inner: Any, node_id: str, witness: "LockWitness") -> None:
        self._inner = inner
        self.node_id = node_id
        self._witness = witness
        # ident -> recursion depth (supports RLock re-entry).
        self._holders: dict[int, int] = {}
        self._holders_lock = threading.Lock()

    # -- acquisition ---------------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._witness._on_acquire(self)
            ident = threading.get_ident()
            with self._holders_lock:
                self._holders[ident] = self._holders.get(ident, 0) + 1
        return got

    def release(self) -> None:
        ident = threading.get_ident()
        with self._holders_lock:
            depth = self._holders.get(ident, 0)
            if depth <= 1:
                self._holders.pop(ident, None)
            else:
                self._holders[ident] = depth - 1
        self._witness._on_release(self)
        self._inner.release()

    def __enter__(self) -> "WitnessLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked() if hasattr(self._inner, "locked") else bool(self._holders)

    def held_by_current_thread(self) -> bool:
        with self._holders_lock:
            return self._holders.get(threading.get_ident(), 0) > 0


class LockWitness:
    """Recorder + cross-checker for a set of witnessed locks and objects.

    ``inventory`` is the static lock universe (canonical node IDs from
    :meth:`~.model.ConcurrencyModel.lock_inventory`); node derivation walks
    each object's MRO against it so dynamic names match static names.
    """

    def __init__(self, inventory: Iterable[str] = ()) -> None:
        self.inventory = set(inventory)
        self._tls = threading.local()
        self._state_lock = threading.Lock()
        #: (held, acquired) -> observation count.
        self.order_edges: dict[tuple[str, str], int] = {}
        #: (node_id, attr, write) -> observation count of unguarded access.
        self.guard_violations: dict[tuple[str, str, bool], int] = {}
        #: guarded accesses that *were* correctly locked (coverage signal).
        self.guarded_accesses: int = 0
        # id(obj) -> (obj, lock_attr, WitnessLock, original class or None)
        self._wrapped: dict[int, list[Any]] = {}

    # -- held-stack bookkeeping ----------------------------------------------

    def _held(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _on_acquire(self, lock: WitnessLock) -> None:
        held = self._held()
        with self._state_lock:
            for h in held:
                if h != lock.node_id:
                    key = (h, lock.node_id)
                    self.order_edges[key] = self.order_edges.get(key, 0) + 1
        held.append(lock.node_id)

    def _on_release(self, lock: WitnessLock) -> None:
        held = self._held()
        # Remove the most recent occurrence (locks release LIFO in practice,
        # but don't require it).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == lock.node_id:
                del held[i]
                break

    # -- instrumentation -----------------------------------------------------

    def derive_node_id(self, obj: Any, lock_attr: str) -> str:
        """Canonical node ID via the MRO against the static inventory."""
        for klass in type(obj).__mro__:
            candidate = f"{klass.__module__}.{klass.__qualname__}.{lock_attr}"
            if candidate in self.inventory:
                return candidate
        klass = type(obj)
        return f"{klass.__module__}.{klass.__qualname__}.{lock_attr}"

    def wrap(self, obj: Any, lock_attr: str, *, node_id: str | None = None) -> WitnessLock:
        """Replace ``obj.<lock_attr>`` with a recording proxy."""
        inner = getattr(obj, lock_attr)
        if isinstance(inner, WitnessLock):
            return inner
        wl = WitnessLock(inner, node_id or self.derive_node_id(obj, lock_attr), self)
        object.__setattr__(obj, lock_attr, wl)
        self._wrapped.setdefault(id(obj), [obj, {}, None])[1][lock_attr] = (wl, inner)
        return wl

    def watch(self, obj: Any, guarded: Mapping[str, str]) -> None:
        """Verify ``obj``'s ``{attr: lock_attr}`` accesses hold their lock.

        The named lock attributes must already be wrapped (or are wrapped
        here).  Implemented by swapping in a dynamic subclass, so only this
        instance pays the interception cost.
        """
        for lock_attr in set(guarded.values()):
            self.wrap(obj, lock_attr)
        entry = self._wrapped[id(obj)]
        orig_cls = type(obj)
        witness = self
        guard_map = dict(guarded)
        lock_attrs = frozenset(guard_map.values())

        def _check(inst: Any, name: str, write: bool) -> None:
            lock = orig_cls.__getattribute__(inst, guard_map[name])
            if isinstance(lock, WitnessLock) and lock.held_by_current_thread():
                with witness._state_lock:
                    witness.guarded_accesses += 1
                return
            node = lock.node_id if isinstance(lock, WitnessLock) else guard_map[name]
            key = (node, name, write)
            with witness._state_lock:
                witness.guard_violations[key] = witness.guard_violations.get(key, 0) + 1

        class _Watched(orig_cls):  # type: ignore[misc, valid-type]
            def __getattribute__(self, name: str) -> Any:
                if name in guard_map and name not in lock_attrs:
                    _check(self, name, False)
                return orig_cls.__getattribute__(self, name)

            def __setattr__(self, name: str, value: Any) -> None:
                if name in guard_map:
                    _check(self, name, True)
                orig_cls.__setattr__(self, name, value)

        _Watched.__name__ = orig_cls.__name__
        _Watched.__qualname__ = orig_cls.__qualname__
        entry[2] = orig_cls
        object.__setattr__(obj, "__class__", _Watched)

    def unwrap_all(self) -> None:
        """Restore every wrapped lock and watched class."""
        for obj, locks, orig_cls in self._wrapped.values():
            if orig_cls is not None:
                object.__setattr__(obj, "__class__", orig_cls)
            for lock_attr, (_wl, inner) in locks.items():
                object.__setattr__(obj, lock_attr, inner)
        self._wrapped.clear()

    # -- cross-check ---------------------------------------------------------

    def cross_check(self, static_graph: LockOrderGraph) -> list[Finding]:
        """Dynamic evidence vs the static model; findings on divergence."""
        findings: list[Finding] = []
        known = set(static_graph.lock_kinds) | self.inventory
        allowed = static_graph.edge_pairs() | static_graph.transitive_closure()
        with self._state_lock:
            edges = dict(self.order_edges)
            violations = dict(self.guard_violations)
        for (held, acquired), count in sorted(edges.items()):
            if held == acquired:
                continue  # RLock re-entry, already witnessed as legal
            if held not in known or acquired not in known:
                continue  # a lock outside the modeled universe
            if (held, acquired) not in allowed:
                findings.append(
                    make_finding(
                        "WIT001",
                        f"runtime acquired {acquired} while holding {held} "
                        f"({count}x) but the static graph has no such path",
                        location={"module": "(witness)", "qualname": f"{held}->{acquired}"},
                        context={"detail": f"{held}->{acquired}", "count": count},
                    )
                )
        for (node, attr, write), count in sorted(violations.items()):
            findings.append(
                make_finding(
                    "WIT002",
                    f"guarded attribute {attr!r} {'written' if write else 'read'} "
                    f"{count}x without holding {node}",
                    location={"module": "(witness)", "qualname": f"{node}:{attr}"},
                    context={"detail": f"{node}:{attr}", "write": write, "count": count},
                )
            )
        return findings
