"""AST model of the host-concurrency surface: modules, classes, locks, calls.

The concurrency passes (:mod:`.lockdiscipline`, :mod:`.lockorder`,
:mod:`.loophygiene`) all consume one :class:`ConcurrencyModel` built here —
a purely syntactic scan of the target packages (no imports are executed, so
the sanitizer stays execution-free like the plan passes).  The model knows:

* every ``threading.Lock``/``RLock`` **site** (``self._lock = Lock()`` in a
  method, or a dataclass ``field(default_factory=threading.Lock)``), named
  canonically ``<module>.<Class>.<attr>`` — the same IDs the dynamic
  witness (:mod:`.witness`) derives at runtime, which is what makes the
  static/dynamic cross-check possible;
* a light **type environment**: attribute types inferred from ``__init__``
  assignments and dataclass annotations, module-global singletons
  (``_GLOBAL = MetricsRegistry()``), local variables assigned from typed
  expressions, and method **return annotations** — enough to resolve call
  chains like ``_GLOBAL.counter(name).inc(...)`` to ``Counter.inc``;
* per-function **event streams** (:func:`function_events`): guarded
  attribute accesses, lock acquisitions, calls and awaits, each tagged with
  the set of locks statically held at that point.

The analysis is intentionally self-centric: it proves the discipline of
``self.<attr>`` accesses inside the owning class (plus locally-typed
objects like ``with entry._lock:``), and leaves cross-object access to the
runtime witness — the same split as the paper's §5.1 hazard pass, which
proves per-kernel phase intervals statically and leaves cross-kernel
interleaving to the timeline simulator.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from importlib import util as importlib_util
from pathlib import Path
from typing import Any, Iterator, Sequence

__all__ = [
    "LockSite",
    "FuncInfo",
    "ClassInfo",
    "ModuleInfo",
    "ConcurrencyModel",
    "Access",
    "Acquire",
    "CallEvent",
    "AwaitEvent",
    "WithLock",
    "FunctionEvents",
    "scan_packages",
    "model_from_sources",
    "function_events",
]

#: Container-method names treated as *writes* when invoked on a guarded
#: attribute (``self._entries.clear()`` parses as a Load of ``_entries``).
MUTATOR_METHODS = frozenset(
    {
        "clear", "append", "appendleft", "add", "insert", "extend", "update",
        "pop", "popitem", "popleft", "remove", "discard", "setdefault",
        "move_to_end", "sort", "reverse",
    }
)

_LOCK_KINDS = {"Lock": "Lock", "RLock": "RLock"}


@dataclass(frozen=True)
class LockSite:
    """One lock attribute: where it lives and what flavour it is."""

    module: str
    cls: str
    attr: str
    kind: str  # "Lock" | "RLock"
    lineno: int

    @property
    def node_id(self) -> str:
        """Canonical graph/witness name, ``<module>.<Class>.<attr>``."""
        return f"{self.module}.{self.cls}.{self.attr}"


@dataclass
class FuncInfo:
    """One function or method definition."""

    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...] = ()
    callback_params: frozenset[str] = frozenset()
    returns: str | None = None  # unparsed return annotation

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """One class definition plus everything the passes need from it."""

    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, FuncInfo] = field(default_factory=dict)
    lock_attrs: dict[str, LockSite] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> raw type name
    callback_attrs: set[str] = field(default_factory=set)
    guard_decorators: list[dict[str, Any]] = field(default_factory=list)

    @property
    def key(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """One scanned source file."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool = False
    imports: dict[str, str] = field(default_factory=dict)  # local -> dotted
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    global_types: dict[str, str] = field(default_factory=dict)  # var -> raw type name


def _is_callable_annotation(node: ast.expr | None) -> bool:
    if node is None:
        return False
    try:
        return "Callable" in ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our inputs
        return False


def _annotation_name(node: ast.expr | None) -> str | None:
    """Single concrete class name out of an annotation, if there is one.

    Handles ``X``, ``"X"``, ``X | None`` and ``Optional[X]``; anything with
    more than one concrete candidate resolves to ``None`` (unknown).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        names = [_annotation_name(n) for n in (node.left, node.right)]
        concrete = [n for n in names if n is not None and n != "None"]
        return concrete[0] if len(concrete) == 1 else None
    if isinstance(node, ast.Subscript):
        base = _annotation_name(node.value)
        if base == "Optional":
            return _annotation_name(node.slice)
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _ModuleScanner(ast.NodeVisitor):
    """Populates one :class:`ModuleInfo` from its AST."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.info.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        parts = self.info.name.split(".")
        anchor = parts if self.info.is_package else parts[:-1]
        if node.level:
            anchor = anchor[: len(anchor) - (node.level - 1)] if node.level > 1 else anchor
            base = ".".join(anchor + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            self.info.imports[local] = f"{base}.{alias.name}" if base else alias.name

    # -- top-level defs ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.info.functions[node.name] = _func_info(self.info.name, None, node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.info.functions[node.name] = _func_info(self.info.name, None, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Module-global singleton: `_GLOBAL = MetricsRegistry()`.
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
        ):
            self.info.global_types[node.targets[0].id] = node.value.func.id

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            module=self.info.name,
            name=node.name,
            node=node,
            bases=tuple(
                b.id if isinstance(b, ast.Name) else (b.attr if isinstance(b, ast.Attribute) else "")
                for b in node.bases
            ),
        )
        for deco in node.decorator_list:
            spec = _guard_decorator_spec(deco)
            if spec is not None:
                cls.guard_decorators.append(spec)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = _func_info(self.info.name, node.name, item)
                self._scan_method_attrs(cls, item)
            elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                self._scan_class_field(cls, item)
        self.info.classes[node.name] = cls

    # -- attribute discovery -------------------------------------------------

    def _scan_class_field(self, cls: ClassInfo, node: ast.AnnAssign) -> None:
        """Dataclass-style field: lock factories and annotated types."""
        name = node.target.id  # type: ignore[union-attr]
        if isinstance(node.value, ast.Call):
            for kw in node.value.keywords:
                if kw.arg == "default_factory":
                    kind = self._lock_kind(kw.value)
                    if kind:
                        cls.lock_attrs[name] = LockSite(
                            cls.module, cls.name, name, kind, node.lineno
                        )
        ann = _annotation_name(node.annotation)
        if ann and name not in cls.lock_attrs:
            cls.attr_types.setdefault(name, ann)
        if _is_callable_annotation(node.annotation):
            cls.callback_attrs.add(name)

    def _scan_method_attrs(
        self, cls: ClassInfo, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """`self.x = ...` assignments: lock sites, types, callback fields."""
        params = {a.arg: a.annotation for a in method.args.args}
        for stmt in ast.walk(method):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            kind = self._lock_kind(value) if isinstance(value, ast.Call) else None
            if kind:
                cls.lock_attrs.setdefault(
                    attr, LockSite(cls.module, cls.name, attr, kind, stmt.lineno)
                )
                continue
            ann_name = _annotation_name(annotation)
            if ann_name:
                cls.attr_types.setdefault(attr, ann_name)
            if _is_callable_annotation(annotation):
                cls.callback_attrs.add(attr)
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                cls.attr_types.setdefault(attr, value.func.id)
            elif isinstance(value, ast.IfExp):
                for arm in (value.body, value.orelse):
                    if isinstance(arm, ast.Call) and isinstance(arm.func, ast.Name):
                        cls.attr_types.setdefault(attr, arm.func.id)
                        break
            elif isinstance(value, ast.Name) and value.id in params:
                if _is_callable_annotation(params[value.id]):
                    cls.callback_attrs.add(attr)

    def _lock_kind(self, node: ast.expr | None) -> str | None:
        """``threading.Lock``/``RLock`` (called or as a factory ref), else None."""
        if isinstance(node, ast.Call):
            node = node.func
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "threading" and node.attr in _LOCK_KINDS:
                return _LOCK_KINDS[node.attr]
        if isinstance(node, ast.Name):
            dotted = self.info.imports.get(node.id, "")
            if dotted in ("threading.Lock", "threading.RLock"):
                return _LOCK_KINDS[dotted.rsplit(".", 1)[1]]
        return None


def _func_info(
    module: str, cls: str | None, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> FuncInfo:
    params = tuple(a.arg for a in node.args.args + node.args.kwonlyargs)
    callbacks = frozenset(
        a.arg
        for a in node.args.args + node.args.kwonlyargs
        if _is_callable_annotation(a.annotation)
    )
    returns = None
    if node.returns is not None:
        returns = _annotation_name(node.returns)
    return FuncInfo(
        module=module, cls=cls, name=node.name, node=node,
        params=params, callback_params=callbacks, returns=returns,
    )


def _guard_decorator_spec(deco: ast.expr) -> dict[str, Any] | None:
    """Parse a ``@guarded_by("_lock", "_a", "_b", ...)`` class decorator."""
    if not isinstance(deco, ast.Call):
        return None
    func = deco.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "guarded_by":
        return None
    args = [a.value for a in deco.args if isinstance(a, ast.Constant)]
    if not args:
        return None
    spec: dict[str, Any] = {"lock": args[0], "attrs": tuple(args[1:])}
    for kw in deco.keywords:
        if kw.arg == "assume_held" and isinstance(kw.value, (ast.Tuple, ast.List)):
            spec["assume_held"] = tuple(
                e.value for e in kw.value.elts if isinstance(e, ast.Constant)
            )
    return spec


# ---------------------------------------------------------------------------
# the model
# ---------------------------------------------------------------------------


class ConcurrencyModel:
    """Resolution layer over the scanned modules."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self._class_index: dict[str, list[ClassInfo]] = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                self._class_index.setdefault(cls.name, []).append(cls)

    # -- symbol resolution ---------------------------------------------------

    def resolve_symbol(self, module: str, name: str) -> ClassInfo | FuncInfo | None:
        """Resolve ``name`` as visible from ``module`` (imports followed)."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        if name in mod.classes:
            return mod.classes[name]
        if name in mod.functions:
            return mod.functions[name]
        dotted = mod.imports.get(name)
        if dotted:
            return self.resolve_dotted(dotted)
        return None

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> ClassInfo | FuncInfo | None:
        """Resolve a fully-qualified name, following one-hop re-exports."""
        if _depth > 5:
            return None
        mod_name, _, symbol = dotted.rpartition(".")
        mod = self.modules.get(mod_name)
        if mod is None or not symbol:
            return None
        if symbol in mod.classes:
            return mod.classes[symbol]
        if symbol in mod.functions:
            return mod.functions[symbol]
        # Re-export hub (`from .metrics import counter_add` in __init__).
        reexport = mod.imports.get(symbol)
        if reexport:
            return self.resolve_dotted(reexport, _depth + 1)
        return None

    # -- class structure -----------------------------------------------------

    def class_by_key(self, key: str) -> ClassInfo | None:
        mod_name, _, cls_name = key.rpartition(".")
        mod = self.modules.get(mod_name)
        return mod.classes.get(cls_name) if mod else None

    def iter_bases(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """``cls`` then its resolvable base classes, depth-first."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop(0)
            if cur.key in seen:
                continue
            seen.add(cur.key)
            yield cur
            for base in cur.bases:
                resolved = self.resolve_symbol(cur.module, base)
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)

    def find_lock(self, cls: ClassInfo, attr: str) -> LockSite | None:
        """Lock site for ``attr`` on ``cls``, searching base classes."""
        for c in self.iter_bases(cls):
            if attr in c.lock_attrs:
                return c.lock_attrs[attr]
        return None

    def find_method(self, cls: ClassInfo, name: str) -> FuncInfo | None:
        for c in self.iter_bases(cls):
            if name in c.methods:
                return c.methods[name]
        return None

    def find_attr_type(self, cls: ClassInfo, attr: str) -> ClassInfo | None:
        for c in self.iter_bases(cls):
            raw = c.attr_types.get(attr)
            if raw:
                resolved = self.resolve_symbol(c.module, raw)
                if isinstance(resolved, ClassInfo):
                    return resolved
        return None

    def is_callback_attr(self, cls: ClassInfo, attr: str) -> bool:
        return any(attr in c.callback_attrs for c in self.iter_bases(cls))

    def lock_inventory(self) -> dict[str, LockSite]:
        """Every lock site in the model, keyed by canonical node ID."""
        out: dict[str, LockSite] = {}
        for mod in self.modules.values():
            for cls in mod.classes.values():
                for site in cls.lock_attrs.values():
                    out[site.node_id] = site
        return out

    def iter_functions(self) -> Iterator[tuple[ModuleInfo, ClassInfo | None, FuncInfo]]:
        for mod in self.modules.values():
            for fn in mod.functions.values():
                yield mod, None, fn
            for cls in mod.classes.values():
                for fn in cls.methods.values():
                    yield mod, cls, fn

    # -- expression typing ---------------------------------------------------

    def infer_type(
        self,
        expr: ast.expr,
        *,
        module: str,
        cls: ClassInfo | None,
        local_types: dict[str, str] | None = None,
    ) -> ClassInfo | None:
        """Best-effort static type of ``expr`` (a scanned class, or None)."""
        locals_ = local_types or {}
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return cls
            if expr.id in locals_:
                resolved = self.resolve_symbol(module, locals_[expr.id])
                return resolved if isinstance(resolved, ClassInfo) else None
            mod = self.modules.get(module)
            if mod and expr.id in mod.global_types:
                resolved = self.resolve_symbol(module, mod.global_types[expr.id])
                return resolved if isinstance(resolved, ClassInfo) else None
            return None
        if isinstance(expr, ast.Attribute):
            owner = self.infer_type(
                expr.value, module=module, cls=cls, local_types=locals_
            )
            if owner is not None:
                return self.find_attr_type(owner, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            callee = self.resolve_callable(
                expr.func, module=module, cls=cls, local_types=locals_
            )
            if isinstance(callee, ClassInfo):
                return callee  # constructor call -> instance
            if isinstance(callee, FuncInfo) and callee.returns:
                resolved = self.resolve_symbol(callee.module, callee.returns)
                return resolved if isinstance(resolved, ClassInfo) else None
            return None
        if isinstance(expr, ast.IfExp):
            return self.infer_type(
                expr.body, module=module, cls=cls, local_types=locals_
            ) or self.infer_type(expr.orelse, module=module, cls=cls, local_types=locals_)
        return None

    def resolve_callable(
        self,
        func: ast.expr,
        *,
        module: str,
        cls: ClassInfo | None,
        local_types: dict[str, str] | None = None,
        params: Sequence[str] = (),
        callback_params: frozenset[str] = frozenset(),
    ) -> ClassInfo | FuncInfo | str | None:
        """Resolve a call target: class, function, ``"callback"``, or None."""
        locals_ = local_types or {}
        if isinstance(func, ast.Name):
            if func.id in callback_params:
                return "callback"
            if func.id in params or func.id in locals_:
                # A called local: only flag params annotated Callable above;
                # a typed local being *called* is not a pattern we model.
                return None
            resolved = self.resolve_symbol(module, func.id)
            return resolved
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self" and cls:
                if self.is_callback_attr(cls, func.attr):
                    return "callback"
                method = self.find_method(cls, func.attr)
                if method is not None:
                    return method
                return None
            owner = self.infer_type(
                func.value, module=module, cls=cls, local_types=locals_
            )
            if owner is not None:
                if self.is_callback_attr(owner, func.attr):
                    return "callback"
                return self.find_method(owner, func.attr)
            return None
        return None


# ---------------------------------------------------------------------------
# event extraction (the shared walker)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Access:
    """One guarded-candidate attribute access (``self.<attr>``)."""

    attr: str
    write: bool
    held: tuple[str, ...]
    lineno: int
    identity_test: bool = False  # `self.x is None` — does not touch state


@dataclass(frozen=True)
class Acquire:
    """One lock acquisition (a ``with`` entry or an explicit ``.acquire()``)."""

    lock_id: str
    kind: str
    held: tuple[str, ...]
    lineno: int
    explicit: bool = False  # bare .acquire() call rather than a with block


@dataclass(frozen=True)
class WithLock:
    """One ``with <threading lock>:`` statement (for loop-hygiene lint)."""

    lock_id: str
    lineno: int


@dataclass(frozen=True)
class CallEvent:
    """One call expression, with what we resolved it to."""

    node: ast.Call
    resolved: ClassInfo | FuncInfo | str | None
    held: tuple[str, ...]
    lineno: int


@dataclass(frozen=True)
class AwaitEvent:
    held: tuple[str, ...]
    lineno: int


@dataclass
class FunctionEvents:
    """Everything the passes need from one function body."""

    func: FuncInfo
    accesses: list[Access] = field(default_factory=list)
    acquires: list[Acquire] = field(default_factory=list)
    with_locks: list[WithLock] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    awaits: list[AwaitEvent] = field(default_factory=list)


class _EventWalker:
    def __init__(
        self,
        model: ConcurrencyModel,
        module: str,
        cls: ClassInfo | None,
        func: FuncInfo,
        *,
        entry_held: tuple[str, ...] = (),
    ) -> None:
        self.model = model
        self.module = module
        self.cls = cls
        self.func = func
        self.events = FunctionEvents(func=func)
        self.local_types: dict[str, str] = {}
        self.entry_held = entry_held
        self._identity_nodes: set[int] = set()
        self._write_nodes: set[int] = set()

    # -- lock expression recognition ----------------------------------------

    def _lock_site_of(self, expr: ast.expr) -> LockSite | None:
        """``self.<lock>`` or ``<typed local>.<lock>`` -> its LockSite."""
        if not isinstance(expr, ast.Attribute):
            return None
        owner: ClassInfo | None = None
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            owner = self.cls
        else:
            owner = self.model.infer_type(
                expr.value, module=self.module, cls=self.cls, local_types=self.local_types
            )
        if owner is None:
            return None
        return self.model.find_lock(owner, expr.attr)

    # -- statements ----------------------------------------------------------

    def walk(self) -> FunctionEvents:
        self._stmts(self.func.node.body, self.entry_held)
        return self.events

    def _stmts(self, body: Sequence[ast.stmt], held: tuple[str, ...]) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(stmt, ast.With):
            acquired: list[str] = []
            for item in stmt.items:
                site = self._lock_site_of(item.context_expr)
                self._expr(item.context_expr, held)
                if site is not None:
                    self.events.acquires.append(
                        Acquire(site.node_id, site.kind, held + tuple(acquired), stmt.lineno)
                    )
                    self.events.with_locks.append(WithLock(site.node_id, stmt.lineno))
                    acquired.append(site.node_id)
            self._stmts(stmt.body, held + tuple(acquired))
        elif isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                self._expr(item.context_expr, held)
            self._stmts(stmt.body, held)
        elif isinstance(stmt, (ast.If,)):
            self._expr(stmt.test, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held)
            self._mark_store(stmt.target)
            self._expr(stmt.target, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body, held)
            for handler in stmt.handlers:
                self._stmts(handler.body, held)
            self._stmts(stmt.orelse, held)
            self._stmts(stmt.finalbody, held)
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held)
            for target in stmt.targets:
                self._mark_store(target)
                self._expr(target, held)
            self._track_local(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, held)
            self._mark_store(stmt.target)
            self._expr(stmt.target, held)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, held)
            self._mark_store(stmt.target)
            self._expr(stmt.target, held)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._mark_store(target)
                self._expr(target, held)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if getattr(stmt, "value", None) is not None:
                self._expr(stmt.value, held)  # type: ignore[arg-type]
        elif isinstance(stmt, ast.Assert):
            self._expr(stmt.test, held)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions: bodies run later, not under this held-set
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to do.

    def _track_local(self, stmt: ast.Assign) -> None:
        """``entry = self.get(name)``-style local typing."""
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        inferred = self.model.infer_type(
            stmt.value, module=self.module, cls=self.cls, local_types=self.local_types
        )
        if inferred is not None:
            self.local_types[stmt.targets[0].id] = inferred.name

    def _mark_store(self, target: ast.expr) -> None:
        """Flag `self.<attr>` (and tuple elements) as written."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._mark_store(elt)
        elif isinstance(target, ast.Attribute):
            self._write_nodes.add(id(target))
        elif isinstance(target, ast.Subscript):
            # `self._values[key] = v` writes through the container.
            if isinstance(target.value, ast.Attribute):
                self._write_nodes.add(id(target.value))
            self._expr_noop(target.slice)

    def _expr_noop(self, _: ast.expr) -> None:
        return None

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: ast.expr, held: tuple[str, ...]) -> None:
        if isinstance(expr, ast.Await):
            self.events.awaits.append(AwaitEvent(held, expr.lineno))
            self._expr(expr.value, held)
            return
        if isinstance(expr, ast.Compare):
            self._mark_identity_tests(expr)
        if isinstance(expr, ast.Call):
            self._call(expr, held)
            return
        if isinstance(expr, ast.Attribute):
            self._attribute(expr, held)
            self._expr(expr.value, held)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, held)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, held)
                for cond in child.ifs:
                    self._expr(cond, held)

    def _mark_identity_tests(self, cmp: ast.Compare) -> None:
        """`self.x is None` / `is not None`: access does not touch state."""
        operands = [cmp.left, *cmp.comparators]
        if len(operands) != 2 or not all(isinstance(op, (ast.Is, ast.IsNot)) for op in cmp.ops):
            return
        names = [o for o in operands if isinstance(o, ast.Attribute)]
        nones = [
            o for o in operands if isinstance(o, ast.Constant) and o.value is None
        ]
        if len(names) == 1 and len(nones) == 1:
            self._identity_nodes.add(id(names[0]))

    def _attribute(self, expr: ast.Attribute, held: tuple[str, ...]) -> None:
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            self.events.accesses.append(
                Access(
                    attr=expr.attr,
                    write=id(expr) in self._write_nodes,
                    held=held,
                    lineno=expr.lineno,
                    identity_test=id(expr) in self._identity_nodes,
                )
            )

    def _call(self, call: ast.Call, held: tuple[str, ...]) -> None:
        func = call.func
        # Explicit lock-method calls: `self._lock.acquire()` / `.release()`.
        if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
            site = self._lock_site_of(func.value)
            if site is not None:
                if func.attr == "acquire":
                    self.events.acquires.append(
                        Acquire(site.node_id, site.kind, held, call.lineno, explicit=True)
                    )
                for arg in call.args:
                    self._expr(arg, held)
                return
        # Container-mutator writes: `self._entries.clear()`.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self._write_nodes.add(id(func.value))
        resolved = self.model.resolve_callable(
            func,
            module=self.module,
            cls=self.cls,
            local_types=self.local_types,
            params=self.func.params,
            callback_params=self.func.callback_params,
        )
        self.events.calls.append(CallEvent(call, resolved, held, call.lineno))
        self._expr(func, held)
        for arg in call.args:
            self._expr(arg, held)
        for kw in call.keywords:
            self._expr(kw.value, held)


def function_events(
    model: ConcurrencyModel,
    cls: ClassInfo | None,
    func: FuncInfo,
    *,
    entry_held: tuple[str, ...] = (),
) -> FunctionEvents:
    """Extract the event stream of one function body.

    ``entry_held`` seeds the held-set for caller-must-hold helpers (the
    ``assume_held`` methods of a guard registration).
    """
    return _EventWalker(model, func.module, cls, func, entry_held=entry_held).walk()


# ---------------------------------------------------------------------------
# building the model
# ---------------------------------------------------------------------------


def _scan_module(name: str, path: str, source: str, *, is_package: bool) -> ModuleInfo:
    tree = ast.parse(source, filename=path)
    info = ModuleInfo(name=name, path=path, tree=tree, is_package=is_package)
    _ModuleScanner(info).visit(tree)
    return info


def model_from_sources(sources: dict[str, str]) -> ConcurrencyModel:
    """Build a model straight from ``{module_name: source}`` (tests/fixtures)."""
    modules = {
        name: _scan_module(name, f"<{name}>", src, is_package=name.count(".") == 0)
        for name, src in sources.items()
    }
    return ConcurrencyModel(modules)


def _package_files(package: str) -> list[tuple[str, Path, bool]]:
    """(module name, path, is_package) for every source file of ``package``."""
    spec = importlib_util.find_spec(package)
    if spec is None or not spec.submodule_search_locations:
        raise ModuleNotFoundError(f"package {package!r} not found on sys.path")
    root = Path(next(iter(spec.submodule_search_locations)))
    out: list[tuple[str, Path, bool]] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).with_suffix("")
        parts = [p for p in rel.parts]
        if parts[-1] == "__init__":
            name = ".".join([package, *parts[:-1]]) if parts[:-1] else package
            out.append((name, path, True))
        else:
            out.append((".".join([package, *parts]), path, False))
    return out


def scan_packages(packages: Sequence[str]) -> ConcurrencyModel:
    """Scan the source files of ``packages`` into one model (no imports run)."""
    modules: dict[str, ModuleInfo] = {}
    for package in packages:
        for name, path, is_package in _package_files(package):
            modules[name] = _scan_module(
                name, str(path), path.read_text(encoding="utf-8"), is_package=is_package
            )
    return ConcurrencyModel(modules)
