"""LOOP pass: nothing blocks the asyncio event loop.

Walks every ``async def`` body in the target packages (the serve scheduler
and HTTP service are the real consumers) and flags synchronous work that
would stall the loop — the single-threaded resource every request shares:

* LOOP001 — a known-blocking API call (``time.sleep``, ``subprocess.*``,
  ``os.system``, ``open``, socket connects, explicit ``lock.acquire()``);
* LOOP002 — a ``with <threading lock>:`` block inline in the async body.
  WARNING, not ERROR: an O(fields) uncontended critical section (the
  scheduler's stats bookkeeping) is a measured, accepted cost — the rule
  exists so every such section is a *decision*, recorded in the baseline;
* LOOP003 — heavy synchronous work without an executor hop: NumPy
  contractions, model forwards, pool ``shutdown``/``join``/``result``;
* LOOP004 — ``await`` while a threading lock is held (the deadlock shape:
  the loop suspends holding a lock a worker thread needs to finish the
  very work being awaited).

``run_in_executor(pool, fn, *args)`` passes ``fn`` *uncalled*, so executor
hops are naturally invisible to the call scan — no special-casing needed.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..rules import make_finding
from .model import ConcurrencyModel, FuncInfo, function_events

__all__ = ["loop_hygiene_findings"]

#: Fully-qualified callables that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.wait",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
    }
)

#: Bare names that block (builtins / common from-imports).
_BLOCKING_NAMES = frozenset({"open", "sleep", "urlopen"})

#: Attribute-call names that are heavy sync work on the loop.
_HEAVY_ATTR_CALLS = frozenset(
    {"shutdown", "join", "result", "einsum", "tensordot", "matmul", "dot"}
)

#: Resolved scanned functions that are heavy (model forwards, convs).
_HEAVY_FUNCS = frozenset({"infer_rows", "convolve", "conv2d_im2col_winograd"})


def _dotted_name(model: ConcurrencyModel, module: str, func: ast.expr) -> str | None:
    """Best-effort dotted name of a call target (``time.sleep``, ``open``)."""
    if isinstance(func, ast.Name):
        mod = model.modules.get(module)
        if mod and func.id in mod.imports:
            return mod.imports[func.id]
        return func.id
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base = func.value.id
        mod = model.modules.get(module)
        if mod and base in mod.imports:
            base = mod.imports[base]
        return f"{base}.{func.attr}"
    return None


def loop_hygiene_findings(model: ConcurrencyModel) -> list[Finding]:
    findings: list[Finding] = []
    for mod, cls, func in model.iter_functions():
        if not func.is_async:
            continue
        events = function_events(model, cls, func)
        qual = f"{mod.name}.{func.qualname}"

        for wl in events.with_locks:
            findings.append(
                make_finding(
                    "LOOP002",
                    f"async {qual} acquires threading lock {wl.lock_id} inline "
                    f"on the event loop",
                    location={
                        "module": mod.name,
                        "qualname": func.qualname,
                        "line": wl.lineno,
                    },
                    context={"detail": f"with-lock:{wl.lock_id}"},
                )
            )

        for aw in events.awaits:
            if aw.held:
                findings.append(
                    make_finding(
                        "LOOP004",
                        f"async {qual} awaits while holding {', '.join(aw.held)}",
                        location={
                            "module": mod.name,
                            "qualname": func.qualname,
                            "line": aw.lineno,
                        },
                        context={"detail": f"await-under:{','.join(aw.held)}", "held": list(aw.held)},
                    )
                )

        for call in events.calls:
            node = call.node
            dotted = _dotted_name(model, mod.name, node.func)
            attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
            blocking = dotted in _BLOCKING_CALLS or (
                isinstance(node.func, ast.Name) and node.func.id in _BLOCKING_NAMES
            )
            # Explicit lock-method acquisition shows up as an Acquire event
            # with explicit=True; surface those here as LOOP001 too.
            if blocking:
                findings.append(
                    make_finding(
                        "LOOP001",
                        f"async {qual} calls blocking {dotted or attr}() on the "
                        f"event loop",
                        location={
                            "module": mod.name,
                            "qualname": func.qualname,
                            "line": call.lineno,
                        },
                        context={"detail": "blocking:" + str(dotted or attr)},
                    )
                )
                continue
            heavy = attr in _HEAVY_ATTR_CALLS or (
                isinstance(call.resolved, FuncInfo) and call.resolved.name in _HEAVY_FUNCS
            )
            if (
                attr == "join"
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, (ast.Constant, ast.JoinedStr))
            ):
                heavy = False  # str.join on a literal, not a thread join
            if heavy:
                findings.append(
                    make_finding(
                        "LOOP003",
                        f"async {qual} runs heavy sync call "
                        f"{dotted or attr}() without an executor hop",
                        location={
                            "module": mod.name,
                            "qualname": func.qualname,
                            "line": call.lineno,
                        },
                        context={"detail": "heavy:" + str(attr or dotted)},
                    )
                )

        for acq in events.acquires:
            if acq.explicit:
                findings.append(
                    make_finding(
                        "LOOP001",
                        f"async {qual} calls {acq.lock_id}.acquire() on the event "
                        f"loop (can block indefinitely)",
                        location={
                            "module": mod.name,
                            "qualname": func.qualname,
                            "line": acq.lineno,
                        },
                        context={"detail": f"acquire:{acq.lock_id}"},
                    )
                )
    return findings
