"""ORD pass: the static lock-acquisition graph and its deadlock shapes.

Builds per-function summaries (which locks a function acquires directly,
which calls it makes and under which held locks), then resolves calls
interprocedurally — through import tables, module-global singletons
(``_GLOBAL = MetricsRegistry()``), ``__init__``-inferred attribute types
and method return annotations — to compute each function's *effective*
acquisition set.  Every ``held -> acquired`` pair becomes an edge of the
:class:`LockOrderGraph`.

Findings:

* ORD001 — a cycle in the graph (two locks acquired in both orders from
  different paths), including the self-loop of re-acquiring a
  non-reentrant ``Lock`` already held;
* ORD002 — a user-supplied callable (``Callable``-annotated parameter or
  attribute, e.g. the batcher's cost callbacks) invoked while a lock is
  held: the callback can acquire anything, so the graph can't bound it;
* ORD003 — a blocking join (``.shutdown()`` / ``.join()`` / ``.result()``)
  while a lock is held — the engine's swap-then-join idiom exists exactly
  to avoid this.

The graph (edges + transitive closure) is exported for the dynamic
witness: a runtime edge outside the closure means the static model rotted
(WIT001).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..findings import Finding
from ..rules import make_finding
from .model import ClassInfo, ConcurrencyModel, FuncInfo, function_events

__all__ = ["LockOrderGraph", "build_lock_order_graph", "lock_order_findings"]

#: Attribute-call names that block until other threads/futures finish.
_BLOCKING_JOINS = frozenset({"shutdown", "join", "result"})

#: Interprocedural resolution depth bound (call chains in this codebase are
#: shallow: helper -> registry -> instrument is three hops).
_MAX_DEPTH = 8


@dataclass(frozen=True)
class OrderEdge:
    """``held`` was held while ``acquired`` was acquired, at ``where``."""

    held: str
    acquired: str
    where: str  # "module.qualname:line"
    via: str = ""  # call chain evidence, "" for a direct nested with


@dataclass
class LockOrderGraph:
    """Edges of the static acquisition order plus the reachability closure."""

    edges: list[OrderEdge] = field(default_factory=list)
    lock_kinds: dict[str, str] = field(default_factory=dict)

    def edge_pairs(self) -> set[tuple[str, str]]:
        return {(e.held, e.acquired) for e in self.edges}

    def adjacency(self) -> dict[str, set[str]]:
        adj: dict[str, set[str]] = {}
        for e in self.edges:
            adj.setdefault(e.held, set()).add(e.acquired)
        return adj

    def transitive_closure(self) -> set[tuple[str, str]]:
        """All ``(a, b)`` where b is acquired somewhere under a (reachably)."""
        adj = self.adjacency()
        closure: set[tuple[str, str]] = set()
        for start in adj:
            stack, seen = list(adj[start]), set()
            while stack:
                nxt = stack.pop()
                if nxt in seen:
                    continue
                seen.add(nxt)
                closure.add((start, nxt))
                stack.extend(adj.get(nxt, ()))
        return closure

    def cycles(self) -> list[list[str]]:
        """Elementary cycles (as node lists), deduplicated by rotation."""
        adj = self.adjacency()
        cycles: list[list[str]] = []
        seen_keys: set[tuple[str, ...]] = set()

        def dfs(node: str, path: list[str], on_path: set[str]) -> None:
            for nxt in sorted(adj.get(node, ())):
                if nxt == path[0]:
                    rotation = min(range(len(path)), key=lambda i: path[i])
                    key = tuple(path[rotation:] + path[:rotation])
                    if key not in seen_keys:
                        seen_keys.add(key)
                        cycles.append(list(key))
                elif nxt not in on_path and nxt > path[0]:
                    # Only explore nodes ordered after the root: each cycle
                    # is found exactly once, rooted at its smallest node.
                    dfs(nxt, path + [nxt], on_path | {nxt})

        for start in sorted(adj):
            dfs(start, [start], {start})
        return cycles


def _effective_acquisitions(
    model: ConcurrencyModel,
    func: FuncInfo,
    cls: ClassInfo | None,
    memo: dict[str, set[str]],
    stack: frozenset[str],
    depth: int = 0,
) -> set[str]:
    """Locks ``func`` may acquire, directly or through resolvable calls."""
    key = f"{func.module}.{func.qualname}"
    if key in memo:
        return memo[key]
    if key in stack or depth > _MAX_DEPTH:
        return set()  # recursion / depth bound: stay sound-but-incomplete
    events = function_events(model, cls, func)
    acquired = {a.lock_id for a in events.acquires}
    for call in events.calls:
        target = call.resolved
        if isinstance(target, ClassInfo):
            target = target.methods.get("__init__")
        if isinstance(target, FuncInfo):
            owner = model.class_by_key(f"{target.module}.{target.cls}") if target.cls else None
            acquired |= _effective_acquisitions(
                model, target, owner, memo, stack | {key}, depth + 1
            )
    memo[key] = acquired
    return acquired


def build_lock_order_graph(model: ConcurrencyModel) -> LockOrderGraph:
    graph = LockOrderGraph(
        lock_kinds={nid: site.kind for nid, site in model.lock_inventory().items()}
    )
    memo: dict[str, set[str]] = {}
    for mod, cls, func in model.iter_functions():
        events = function_events(model, cls, func)
        where_base = f"{mod.name}.{func.qualname}"
        for acq in events.acquires:
            for held in acq.held:
                graph.edges.append(
                    OrderEdge(held, acq.lock_id, f"{where_base}:{acq.lineno}")
                )
        for call in events.calls:
            if not call.held:
                continue
            target = call.resolved
            if isinstance(target, ClassInfo):
                target = target.methods.get("__init__")
            if not isinstance(target, FuncInfo):
                continue
            owner = (
                model.class_by_key(f"{target.module}.{target.cls}") if target.cls else None
            )
            inner = _effective_acquisitions(
                model, target, owner, memo, frozenset({where_base}), 1
            )
            for held in call.held:
                for lock in inner:
                    graph.edges.append(
                        OrderEdge(
                            held,
                            lock,
                            f"{where_base}:{call.lineno}",
                            via=f"{target.module}.{target.qualname}",
                        )
                    )
    return graph


def lock_order_findings(
    model: ConcurrencyModel, graph: LockOrderGraph | None = None
) -> tuple[list[Finding], LockOrderGraph]:
    """ORD findings plus the graph (reused by the CLI and the witness)."""
    g = graph if graph is not None else build_lock_order_graph(model)
    findings: list[Finding] = []

    # ORD001a: non-reentrant self-acquisition (with lock: ... lock.acquire()).
    for e in g.edges:
        if e.held == e.acquired and g.lock_kinds.get(e.acquired) != "RLock":
            findings.append(
                make_finding(
                    "ORD001",
                    f"non-reentrant lock {e.acquired} re-acquired while held at {e.where}"
                    + (f" via {e.via}" if e.via else ""),
                    location={"module": e.where.rsplit(":", 1)[0], "qualname": e.acquired},
                    context={"detail": f"self-loop:{e.acquired}", "where": e.where},
                )
            )

    # ORD001b: multi-lock cycles.
    for cycle in g.cycles():
        if len(cycle) < 2:
            continue
        evidence = [
            e.where
            for e in g.edges
            if (e.held, e.acquired)
            in {(cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))}
        ]
        findings.append(
            make_finding(
                "ORD001",
                "lock-order cycle: " + " -> ".join(cycle + [cycle[0]]),
                location={"module": "(graph)", "qualname": " -> ".join(cycle)},
                context={"detail": "cycle:" + "|".join(sorted(cycle)), "edges": evidence},
            )
        )

    # ORD002 (callback under lock) and ORD003 (blocking join under lock).
    for mod, cls, func in model.iter_functions():
        events = function_events(model, cls, func)
        qual = f"{mod.name}.{func.qualname}"
        for call in events.calls:
            if not call.held:
                continue
            if call.resolved == "callback":
                findings.append(
                    make_finding(
                        "ORD002",
                        f"{qual} invokes a user callback while holding "
                        f"{', '.join(call.held)}",
                        location={
                            "module": mod.name,
                            "qualname": func.qualname,
                            "line": call.lineno,
                        },
                        context={"detail": "callback", "held": list(call.held)},
                    )
                )
            name = _called_attr_name(call.node)
            if name in _BLOCKING_JOINS and not _is_self_known_method(model, cls, call.node):
                findings.append(
                    make_finding(
                        "ORD003",
                        f"{qual} calls blocking .{name}() while holding "
                        f"{', '.join(call.held)}",
                        location={
                            "module": mod.name,
                            "qualname": func.qualname,
                            "line": call.lineno,
                        },
                        context={"detail": f"join:{name}", "held": list(call.held)},
                    )
                )
    return findings, g


def _called_attr_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_self_known_method(
    model: ConcurrencyModel, cls: ClassInfo | None, call: ast.Call
) -> bool:
    """``self.shutdown()`` on a scanned class is analyzed, not assumed blocking."""
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and cls is not None
        and model.find_method(cls, func.attr) is not None
    )
