"""Entry point of the concurrency sanitizer: packages in, one report out.

:func:`analyze_concurrency` mirrors :func:`repro.analysis.engine.analyze_plan`
for the host side: scan the target packages into a
:class:`~.model.ConcurrencyModel`, run the three static passes (LOCK, ORD,
LOOP), apply rule-level suppression and the fingerprint baseline, and emit
``analysis.conc.packages`` / ``analysis.conc.findings.*`` counters so the
gate's rule mix lands in the same metrics dump as the kernel sanitizer's.

Baselines are fingerprint files, not rule suppressions: a fingerprint is
``RULE:module:qualname:detail`` — no line numbers, so reformatting a file
does not resurrect an accepted finding, but moving the *construct* (a new
with-lock in a new method) does, which is the point.  The CI gate runs
``--strict`` against the checked-in baseline; a clean tree plus the
baseline yields an empty report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from ...obs import counter_add
from ..findings import Finding, Report, apply_suppressions
from .lockdiscipline import lock_discipline_findings
from .lockorder import LockOrderGraph, build_lock_order_graph, lock_order_findings
from .loophygiene import loop_hygiene_findings
from .model import ConcurrencyModel, scan_packages
from .registry import GUARDS, GuardSpec

__all__ = [
    "DEFAULT_TARGETS",
    "analyze_concurrency",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

#: The host stack the sanitizer covers by default (ISSUE: runtime/serve/obs).
DEFAULT_TARGETS: tuple[str, ...] = ("repro.runtime", "repro.serve", "repro.obs")


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding: ``RULE:module:qualname:detail``.

    Built from the construct, never the line number, so baselines survive
    unrelated edits to the same file.
    """
    loc = finding.location
    detail = finding.context.get("detail", "")
    return ":".join(
        [finding.rule_id, str(loc.get("module", "")), str(loc.get("qualname", "")), str(detail)]
    )


def load_baseline(path: str | Path) -> dict[str, str]:
    """Read a baseline file: ``{fingerprint: reason}``."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}: {data.get('version')!r}")
    return {
        entry["fingerprint"]: entry.get("reason", "")
        for entry in data.get("suppressions", ())
    }


def write_baseline(
    findings: Iterable[Finding], path: str | Path, *, reason: str = "accepted baseline"
) -> int:
    """Write the findings' fingerprints as a fresh baseline; returns count."""
    entries = sorted({fingerprint(f) for f in findings})
    payload = {
        "version": 1,
        "suppressions": [{"fingerprint": fp, "reason": reason} for fp in entries],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


def _apply_baseline(
    findings: Sequence[Finding], baseline: dict[str, str]
) -> tuple[list[Finding], dict[str, int]]:
    kept: list[Finding] = []
    dropped: dict[str, int] = {}
    for f in findings:
        if fingerprint(f) in baseline:
            key = f"baseline:{f.rule_id}"
            dropped[key] = dropped.get(key, 0) + 1
        else:
            kept.append(f)
    return kept, dropped


def analyze_concurrency(
    packages: Sequence[str] = DEFAULT_TARGETS,
    *,
    specs: tuple[GuardSpec, ...] = GUARDS,
    select: Iterable[str] = (),
    suppress: Iterable[str] = (),
    baseline: dict[str, str] | None = None,
    model: ConcurrencyModel | None = None,
) -> tuple[Report, LockOrderGraph]:
    """Run the LOCK / ORD / LOOP passes over ``packages``.

    ``select`` keeps only findings whose rule ID starts with one of the
    given prefixes (``("LOCK", "ORD")``); empty means everything.
    ``baseline`` maps accepted fingerprints to reasons (see
    :func:`load_baseline`).  Returns the report plus the lock-order graph —
    the witness harness cross-checks runtime evidence against the latter.
    """
    m = model if model is not None else scan_packages(packages)
    # Scope the registry to what was scanned: analyzing one package must not
    # report "registry rot" for specs that live in the packages left out.
    prefixes_pkg = tuple(p + "." for p in packages)
    scoped = tuple(
        s for s in specs if s.module in packages or s.module.startswith(prefixes_pkg)
    )
    findings: list[Finding] = []
    findings.extend(lock_discipline_findings(m, scoped))
    ord_findings, graph = lock_order_findings(m)
    findings.extend(ord_findings)
    findings.extend(loop_hygiene_findings(m))

    prefixes = tuple(p.strip().upper() for p in select if p.strip())
    if prefixes:
        findings = [f for f in findings if f.rule_id.startswith(prefixes)]

    kept, rule_dropped = apply_suppressions(findings, suppress)
    base_kept, base_dropped = _apply_baseline(kept, baseline or {})
    suppressed = dict(rule_dropped)
    suppressed.update(base_dropped)

    report = Report(
        subject={"packages": ",".join(packages), "mode": "concurrency"},
        findings=tuple(base_kept),
        suppressed=suppressed,
    )
    counter_add("analysis.conc.packages", len(packages))
    for sev, n in report.counts().items():
        if n:
            counter_add(f"analysis.conc.findings.{sev}", n)
    return report, graph


# Re-export for callers that only need the graph (the witness tests).
build_graph = build_lock_order_graph
