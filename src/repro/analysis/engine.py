"""The sanitizer engine: run every static pass over one plan, one report.

:func:`analyze_plan` is the single entry point the CLI, CI gate and tests
use.  It fans one :class:`repro.core.planner.ConvPlan` out to the five
passes —

1. plan contracts (:mod:`.contracts`, PLAN rules),
2. gather-index bounds (:mod:`.bounds`, BND rules),
3. SMEM pipeline hazards + bank-conflict lint (:mod:`.hazards`, SMEM rules),
4. resource budgets (:mod:`.budget`, RES rules),
5. transform conditioning (:mod:`.conditioning`, COND rules)

— deduplicates the per-kernel passes (a plan often runs the same kernel in
several segments), applies per-rule suppression, and emits the
``analysis.plans`` / ``analysis.findings.*`` observability counters so a
sweep's rule mix is visible in the same metrics dump as everything else.

:class:`AnalysisConfig` carries the corruption/ablation toggles through to
the passes (drop a mitigation, force an overlapped schedule, substitute
interpolation points) — the testability surface the acceptance criteria
require, and the knobs ablation studies use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..core.planner import ConvPlan
from ..core.variants import VariantSpec
from ..gpusim.device import RTX3060TI, DeviceSpec
from ..obs import counter_add
from .bounds import gather_bounds_findings
from .budget import resource_budget_findings
from .conditioning import conditioning_findings
from .contracts import plan_contract_findings
from .findings import Finding, Report, apply_suppressions
from .hazards import bank_conflict_findings, pipeline_hazard_findings

__all__ = ["AnalysisConfig", "analyze_plan"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Pass configuration and corruption/ablation hooks.

    The defaults analyze the plan exactly as shipped.  Every field maps to
    one pass's keyword of the same meaning; see the pass modules for the
    semantics of each toggle.
    """

    # -- hazard pass (§5.1 pipeline model) --
    iterations: int = 4
    buffers: int | None = None
    overlapped: bool | None = None
    assume_sync: bool = True
    # -- bank-conflict lint (§5.2 mitigations) --
    swizzle_ds: bool = True
    z_lanes: bool = True
    padded_ys: bool = True
    arrangement: Callable[[int], tuple[int, int]] | None = None
    # -- conditioning pass (§5.3 points) --
    points: tuple[Any, ...] | None = None
    # -- spec substitution (resource-budget corruption): kernel name -> spec --
    spec_overrides: Mapping[str, VariantSpec] = field(default_factory=dict)


def _winograd_specs(plan: ConvPlan, config: AnalysisConfig) -> list[VariantSpec]:
    """Distinct kernel specs of the plan, in segment order, overrides applied."""
    specs: list[VariantSpec] = []
    seen: set[str] = set()
    for seg in plan.segments:
        if seg.is_gemm:
            continue
        spec = seg.kernel.spec  # type: ignore[union-attr]
        spec = config.spec_overrides.get(spec.name, spec)
        if spec.name not in seen:
            seen.add(spec.name)
            specs.append(spec)
    return specs


def analyze_plan(
    plan: ConvPlan,
    device: DeviceSpec = RTX3060TI,
    *,
    config: AnalysisConfig | None = None,
    suppress: Iterable[str] = (),
) -> Report:
    """Run all five static passes over ``plan`` and return one report.

    Nothing is executed: every finding is a function of the plan object, the
    device spec and the config.  ``suppress`` drops findings of the listed
    rule IDs (recorded, not silently lost, in ``Report.suppressed``).
    """
    cfg = config if config is not None else AnalysisConfig()
    findings: list[Finding] = []

    # Pass 1 + 2: whole-plan contracts and gather bounds.
    findings.extend(plan_contract_findings(plan))
    findings.extend(gather_bounds_findings(plan))

    # Pass 3 + 4: per distinct kernel spec.
    specs = _winograd_specs(plan, cfg)
    for spec in specs:
        findings.extend(
            pipeline_hazard_findings(
                spec,
                iterations=cfg.iterations,
                buffers=cfg.buffers,
                overlapped=cfg.overlapped,
                assume_sync=cfg.assume_sync,
            )
        )
        findings.extend(
            bank_conflict_findings(
                spec,
                swizzle_ds=cfg.swizzle_ds,
                z_lanes=cfg.z_lanes,
                padded_ys=cfg.padded_ys,
                arrangement=cfg.arrangement,
            )
        )
        findings.extend(resource_budget_findings(spec, device))

    # Pass 5: per distinct (n, r) scheme.
    seen_nr: set[tuple[int, int]] = set()
    for spec in specs:
        nr = (spec.n, spec.r)
        if nr in seen_nr:
            continue
        seen_nr.add(nr)
        findings.extend(conditioning_findings(spec.n, spec.r, points=cfg.points))

    kept, dropped = apply_suppressions(findings, suppress)
    report = Report(
        subject={
            "shape": str(plan.shape),
            "algorithm": plan.algorithm,
            "kernels": [s.name for s in specs],
            "device": device.name,
        },
        findings=kept,
        suppressed=dropped,
    )

    counter_add("analysis.plans", algorithm=plan.algorithm)
    for f in report.findings:
        counter_add(
            f"analysis.findings.{f.severity.label}", rule=f.rule_id
        )
    return report
