"""Pass 3 — SMEM hazard detection and bank-conflict lint (§5.1 / §5.2).

Two sub-analyses, both static:

**Phase-interval hazard model** (SMEM001/002).  The §5.1 main loop is
modelled as intervals on a logical timeline: per iteration a *load/transform*
phase writes one SMEM tile buffer and a *compute* (outer-product) phase
reads one.  Double-buffered kernels (alpha in {4, 8}) overlap the next
iteration's load with the current compute — legal only because the phases
touch different buffers; the single-buffered alpha=16 kernels must
serialise, with a ``__syncthreads`` between store and compute.  The
detector intersects every write interval with every read interval of the
same buffer: an overlap is a WAR hazard (load clobbers data still being
read) or a RAW hazard (compute reads data still being written).  The number
of *available* buffers is derived from ``smem_bytes`` — a spec claiming
double buffering whose SMEM only holds one buffer is caught here, as is a
pipeline whose swap barrier was dropped (``assume_sync=False``).

**Bank-conflict lint** (SMEM003-006).  Replays the §5.2 layouts through
:mod:`repro.gpusim.smem` / :mod:`repro.gpusim.warp` at *stage* granularity
and enforces the paper's per-stage claims:

* the Figure 4 Z-shaped laneIdx arrangement makes the outer-product loads
  conflict-free — degree 1 is a hard requirement (SMEM003);
* the padded ``Ys`` staging stores are conflict-free — degree 1 required
  (SMEM004);
* the store-phase mitigation (Gamma_8's ``Xi`` swizzle / Gamma_16's ``Ds``
  padding) must never be *worse* than the naive layout (SMEM005);
* residual store conflicts with mitigations on are reported as INFO
  (SMEM006) — the column-store pattern's known floor, not a defect.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from ..core.variants import VariantSpec
from ..gpusim.smem import SmemArray, conflict_degree, vectorized_conflict_degree
from ..gpusim.warp import (
    linear_lane_arrangement,
    swizzle_xi,
    thread_store_indices_ds,
    thread_store_indices_gs,
    z_lane_arrangement,
)
from .findings import Finding
from .rules import make_finding

__all__ = [
    "PhaseInterval",
    "Hazard",
    "pipeline_intervals",
    "detect_hazards",
    "pipeline_hazard_findings",
    "StageDegrees",
    "stage_degrees",
    "bank_conflict_findings",
    "findings_from_degrees",
]

#: Bytes of one single-buffered tile-array set: Gs + Ds, 4 B words (§5.1).
def _buffer_bytes(spec: VariantSpec) -> int:
    return 4 * spec.alpha * (spec.bn + spec.bm) * spec.bk


# ---------------------------------------------------------------------------
# Phase-interval pipeline model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseInterval:
    """One pipeline phase touching one SMEM buffer over [start, end)."""

    phase: str  # e.g. "load[2]" / "compute[1]"
    buffer: int
    access: str  # "write" | "read"
    start: float
    end: float

    def overlaps(self, other: "PhaseInterval") -> bool:
        return self.buffer == other.buffer and self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class Hazard:
    """A write/read interval overlap on one buffer."""

    kind: str  # "WAR" | "RAW"
    writer: PhaseInterval
    reader: PhaseInterval

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.writer.phase} writes buffer {self.writer.buffer} over "
            f"[{self.writer.start:g}, {self.writer.end:g}) while {self.reader.phase} reads it over "
            f"[{self.reader.start:g}, {self.reader.end:g})"
        )


def pipeline_intervals(
    spec: VariantSpec,
    iterations: int = 4,
    *,
    buffers: int | None = None,
    overlapped: bool | None = None,
    assume_sync: bool = True,
) -> list[PhaseInterval]:
    """Phase intervals of ``iterations`` §5.1 main-loop steps.

    Parameters
    ----------
    spec:
        Kernel blocking; decides the schedule shape unless overridden.
    buffers:
        SMEM buffers actually available; defaults to what ``smem_bytes``
        holds (so a corrupted spec under-provisions the model, as it would
        the hardware).
    overlapped:
        Run the double-buffered (overlapped) schedule; defaults to
        ``spec.double_buffered``.  Forcing ``True`` on a single-buffered
        kernel is the classic §5.1 defect this pass exists to catch.
    assume_sync:
        Model the per-buffer-swap ``__syncthreads``.  ``False`` drops the
        barrier: load phases start half a slot early, exposing the WAR/RAW
        overlaps the barrier exists to prevent.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if buffers is None:
        buffers = max(1, spec.smem_bytes // _buffer_bytes(spec))
    if overlapped is None:
        overlapped = spec.double_buffered
    skew = 0.0 if assume_sync else 0.5
    out: list[PhaseInterval] = []
    if overlapped:
        # Fill: load[0] ahead of the loop; then load[i+1] overlaps compute[i].
        out.append(PhaseInterval("load[0]", 0 % buffers, "write", -1.0, 0.0))
        for i in range(iterations):
            out.append(PhaseInterval(f"compute[{i}]", i % buffers, "read", float(i), i + 1.0))
            if i + 1 < iterations:
                out.append(
                    PhaseInterval(
                        f"load[{i + 1}]",
                        (i + 1) % buffers,
                        "write",
                        i - skew,
                        i + 1.0 - skew,
                    )
                )
    else:
        # Serial: store, barrier, compute — each iteration on buffer i % buffers.
        for i in range(iterations):
            out.append(
                PhaseInterval(f"load[{i}]", i % buffers, "write", float(i), i + 0.5)
            )
            out.append(
                PhaseInterval(
                    f"compute[{i}]", i % buffers, "read", i + 0.5 - skew, i + 1.0
                )
            )
    return out


def detect_hazards(intervals: list[PhaseInterval]) -> list[Hazard]:
    """Every write/read overlap on a shared buffer, classified WAR vs RAW.

    A read that *began before* the overlapping write is a WAR hazard (the
    write clobbers in-flight data); a read beginning at or after the write's
    start is a RAW hazard (it observes a half-written buffer).
    """
    writes = [p for p in intervals if p.access == "write"]
    reads = [p for p in intervals if p.access == "read"]
    hazards: list[Hazard] = []
    for w in writes:
        for r in reads:
            if w.overlaps(r):
                kind = "WAR" if r.start < w.start else "RAW"
                hazards.append(Hazard(kind, w, r))
    return hazards


def pipeline_hazard_findings(
    spec: VariantSpec,
    *,
    iterations: int = 4,
    buffers: int | None = None,
    overlapped: bool | None = None,
    assume_sync: bool = True,
) -> list[Finding]:
    """SMEM001/002 findings of one kernel's modeled pipeline."""
    intervals = pipeline_intervals(
        spec,
        iterations,
        buffers=buffers,
        overlapped=overlapped,
        assume_sync=assume_sync,
    )
    findings: list[Finding] = []
    seen: set[tuple[str, str, str]] = set()
    for hz in detect_hazards(intervals):
        key = (hz.kind, hz.writer.phase, hz.reader.phase)
        if key in seen:  # one finding per distinct phase pair
            continue
        seen.add(key)
        rule = "SMEM001" if hz.kind == "WAR" else "SMEM002"
        findings.append(
            make_finding(
                rule,
                f"{spec.name}: {hz.describe()}",
                location={"kernel": spec.name},
                context={
                    "buffer": hz.writer.buffer,
                    "writer": hz.writer.phase,
                    "reader": hz.reader.phase,
                    "double_buffered": spec.double_buffered,
                },
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Bank-conflict lint
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StageDegrees:
    """Worst per-warp conflict degree of each §5.2 SMEM stage of one kernel.

    ``*_on`` replays the shipped layout (mitigations enabled); ``*_off`` the
    naive layout the paper compares against.
    """

    store_gs_on: int
    store_ds_on: int
    store_gs_off: int
    store_ds_off: int
    load_gs_on: int
    load_ds_on: int
    staging_on: int
    staging_off: int

    def as_dict(self) -> dict[str, int]:
        return {
            "store_gs_on": self.store_gs_on,
            "store_ds_on": self.store_ds_on,
            "store_gs_off": self.store_gs_off,
            "store_ds_off": self.store_ds_off,
            "load_gs_on": self.load_gs_on,
            "load_ds_on": self.load_ds_on,
            "staging_on": self.staging_on,
            "staging_off": self.staging_off,
        }


def _store_degrees(spec: VariantSpec, mitigated: bool) -> tuple[int, int]:
    """Worst-warp (Gs, Ds) store conflict degrees of the main loop."""
    alpha, bn, bm, bk = spec.alpha, spec.bn, spec.bm, spec.bk
    pad_ds = mitigated and alpha == 16  # Gamma_16 pads Ds instead of swizzling
    ds_width = bm + (4 if pad_ds else 0)
    gs = SmemArray("Gs", (bk, alpha, bn))
    ds = SmemArray("Ds", (bk, alpha, ds_width))
    worst_g = worst_d = 1
    for w in range(spec.threads // 32):
        g_addrs, d_addrs = [], []
        for lane in range(32):
            t = w * 32 + lane
            tx, ty = t % 16, t // 16
            gk, gi = thread_store_indices_gs(tx, ty, bn)
            xk, xi = thread_store_indices_ds(tx, ty, bm)
            if mitigated and alpha != 16:
                xi = swizzle_xi(xi, xk, bm)
            g_addrs.append(gs.address(gk, 0, gi % bn))
            d_addrs.append(ds.address(xk, 0, xi % ds_width))
        worst_g = max(worst_g, conflict_degree(g_addrs))
        worst_d = max(worst_d, conflict_degree(d_addrs))
    return worst_g, worst_d


def _load_degrees(
    spec: VariantSpec,
    z_lanes: bool,
    arrangement: Callable[[int], tuple[int, int]] | None = None,
) -> tuple[int, int]:
    """Worst-warp (Gs, Ds) outer-product 128-bit load degrees.

    ``arrangement`` overrides the lane mapping entirely (corruption hook for
    tests and ablations); otherwise ``z_lanes`` picks Figure 4's Z shape or
    the naive linear mapping.
    """
    alpha, bn, bm, bk = spec.alpha, spec.bn, spec.bm, spec.bk
    ds_width = bm + (4 if alpha == 16 else 0)
    gs = SmemArray("Gs", (bk, alpha, bn))
    ds = SmemArray("Ds", (bk, alpha, ds_width))
    if arrangement is None:
        arrangement = z_lane_arrangement if z_lanes else linear_lane_arrangement
    arrange = arrangement
    worst_g = worst_d = 1
    for ik in range(bk):
        g_base, d_base = [], []
        for lane in range(32):
            gidx, didx = arrange(lane)
            if alpha != 16:
                didx = (didx + 4 * ik) % bm  # swizzle compensation at load
            g_base.append(gs.address(ik, 0, gidx % bn))
            d_base.append(ds.address(ik, 0, didx % ds_width))
        worst_g = max(worst_g, vectorized_conflict_degree(g_base, 4))
        worst_d = max(worst_d, vectorized_conflict_degree(d_base, 4))
    return worst_g, worst_d


def _staging_degree(spec: VariantSpec, padded: bool) -> int:
    """Worst-warp degree of the 4-round Ys output staging (§5.1/§5.2)."""
    from ..gpusim.trace import simulate_output_stage

    res = simulate_output_stage(spec, padded=padded)
    # simulate_output_stage counts total phases over warps*rounds; the worst
    # per-access degree is bounded by the average, which is exact here since
    # all rounds are symmetric.
    return max(1, -(-res.phases // res.ideal_phases))


@lru_cache(maxsize=None)
def stage_degrees(
    spec: VariantSpec,
    *,
    swizzle_ds: bool = True,
    z_lanes: bool = True,
    padded_ys: bool = True,
    arrangement: Callable[[int], tuple[int, int]] | None = None,
) -> StageDegrees:
    """Replay every §5.2 stage of ``spec`` with mitigations as configured.

    The keyword toggles model deliberate corruption (a layout that dropped
    its mitigation, or an ``arrangement`` that maps lanes onto shared
    banks); the defaults replay the shipped kernels.  Cached:
    ``VariantSpec`` is frozen and the replay is pure.
    """
    gs_on, ds_on = _store_degrees(spec, mitigated=swizzle_ds)
    gs_off, ds_off = _store_degrees(spec, mitigated=False)
    load_gs, load_ds = _load_degrees(spec, z_lanes=z_lanes, arrangement=arrangement)
    return StageDegrees(
        store_gs_on=gs_on,
        store_ds_on=ds_on,
        store_gs_off=gs_off,
        store_ds_off=ds_off,
        load_gs_on=load_gs,
        load_ds_on=load_ds,
        staging_on=_staging_degree(spec, padded=padded_ys),
        staging_off=_staging_degree(spec, padded=False),
    )


def bank_conflict_findings(
    spec: VariantSpec,
    *,
    swizzle_ds: bool = True,
    z_lanes: bool = True,
    padded_ys: bool = True,
    arrangement: Callable[[int], tuple[int, int]] | None = None,
) -> list[Finding]:
    """SMEM003-006 findings of one kernel's §5.2 layouts."""
    deg = stage_degrees(
        spec,
        swizzle_ds=swizzle_ds,
        z_lanes=z_lanes,
        padded_ys=padded_ys,
        arrangement=arrangement,
    )
    return findings_from_degrees(spec.name, deg)


def findings_from_degrees(name: str, deg: StageDegrees) -> list[Finding]:
    """Apply the SMEM003-006 rule contract to measured stage degrees."""
    loc = {"kernel": name}
    findings: list[Finding] = []
    if deg.load_gs_on > 1 or deg.load_ds_on > 1:
        findings.append(
            make_finding(
                "SMEM003",
                f"{name}: outer-product loads conflict (Gs degree {deg.load_gs_on}, "
                f"Ds degree {deg.load_ds_on}); the Z-lane arrangement must reach degree 1",
                location={**loc, "stage": "outer_product_loads"},
                context=deg.as_dict(),
            )
        )
    if deg.staging_on > 1:
        findings.append(
            make_finding(
                "SMEM004",
                f"{name}: Ys output staging at degree {deg.staging_on} "
                f"(naive layout: {deg.staging_off}); padding must reach degree 1",
                location={**loc, "stage": "output_staging"},
                context=deg.as_dict(),
            )
        )
    if deg.store_gs_on > deg.store_gs_off or deg.store_ds_on > deg.store_ds_off:
        findings.append(
            make_finding(
                "SMEM005",
                f"{name}: mitigated stores (Gs {deg.store_gs_on}, Ds {deg.store_ds_on}) "
                f"conflict more than naive (Gs {deg.store_gs_off}, Ds {deg.store_ds_off})",
                location={**loc, "stage": "main_loop_stores"},
                context=deg.as_dict(),
            )
        )
    elif deg.store_gs_on > 1 or deg.store_ds_on > 1:
        findings.append(
            make_finding(
                "SMEM006",
                f"{name}: residual store conflicts with mitigations on "
                f"(Gs degree {deg.store_gs_on}, Ds degree {deg.store_ds_on})",
                location={**loc, "stage": "main_loop_stores"},
                context=deg.as_dict(),
            )
        )
    return findings
