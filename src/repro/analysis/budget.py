"""Pass 4 — resource budget assertions (§4.1 / §5.4).

Checks one kernel's blocking against one device's hard limits, statically:

* per-block SMEM against the device cap (RES001 — the §4.1 budget that
  produces the paper's ``alpha <= 24`` bound);
* threads per block against the 1024 hardware cap (RES002);
* residency — at least one block must fit per SM once SMEM, registers,
  thread slots and block slots are all accounted for (RES003, via the same
  :func:`repro.gpusim.occupancy.occupancy_for` arithmetic the profiler uses);
* an informational occupancy floor (RES004) flagging configurations below
  25% — expected for the ruse variants, whose merged threads halve
  parallelism (§5.4), hence INFO rather than a failure.
"""

from __future__ import annotations

from ..core.variants import VariantSpec
from ..gpusim.device import DeviceSpec
from ..gpusim.occupancy import occupancy_for
from .findings import Finding
from .rules import make_finding

__all__ = ["OCCUPANCY_FLOOR", "resource_budget_findings"]

#: Below this achieved occupancy the pass emits the RES004 note.
OCCUPANCY_FLOOR = 0.25


def resource_budget_findings(spec: VariantSpec, device: DeviceSpec) -> list[Finding]:
    """RES-rule findings of one kernel blocking on one device."""
    findings: list[Finding] = []
    loc = {"kernel": spec.name, "device": device.name}

    if spec.smem_bytes > device.max_smem_per_block:
        findings.append(
            make_finding(
                "RES001",
                f"{spec.name}: {spec.smem_bytes} B SMEM per block exceeds the "
                f"{device.name} cap of {device.max_smem_per_block} B",
                location=loc,
                context={
                    "smem_bytes": spec.smem_bytes,
                    "max_smem_per_block": device.max_smem_per_block,
                },
            )
        )
    if spec.threads > 1024:
        findings.append(
            make_finding(
                "RES002",
                f"{spec.name}: {spec.threads} threads per block exceeds the 1024 hardware cap",
                location=loc,
                context={"threads": spec.threads},
            )
        )
    if findings:
        # occupancy_for would raise for the same reasons; the explicit checks
        # above carry the better diagnostics, so stop before double-reporting.
        return findings

    try:
        occ = occupancy_for(
            device,
            threads_per_block=spec.threads,
            smem_per_block=spec.smem_bytes,
            regs_per_thread=spec.regs_per_thread,
        )
    except ValueError as exc:
        findings.append(
            make_finding(
                "RES003",
                f"{spec.name} cannot be resident on {device.name}: {exc}",
                location=loc,
                context={
                    "threads": spec.threads,
                    "smem_bytes": spec.smem_bytes,
                    "regs_per_thread": spec.regs_per_thread,
                },
            )
        )
        return findings

    if occ.occupancy < OCCUPANCY_FLOOR:
        findings.append(
            make_finding(
                "RES004",
                f"{spec.name} on {device.name}: occupancy {occ.occupancy:.0%} "
                f"below the {OCCUPANCY_FLOOR:.0%} floor (limited by {occ.limiter})",
                location=loc,
                context=occ.as_dict(),
            )
        )
    return findings
