"""``python -m repro.analysis`` — the kernel sanitizer CLI / CI gate.

Default mode sweeps every benchmark shape in-tree (Figure 8 + Figure 9
panels — which together are exactly the Table 2 workload — plus the Table 3
accuracy shapes) across every Gamma variant registered for each
``(alpha, r)``, and reports the aggregate findings.  Exit status is the
gate: non-zero when any plan has an ERROR finding (or any WARNING too,
under ``--strict``).

Single-plan mode (``--shape`` + ``--kernel``) analyzes one configuration
and prints its full report; tokens use the same grammar as
``repro.obs.kernelprof`` (``g8n6r3``, ``g16r9^c64``, ``32x64x64x128``).

``--json`` switches stdout to a machine-readable document; diagnostics go
to stderr.  ``--suppress RULE`` (repeatable) drops a rule ID from the
verdict while still counting it in the report's ``suppressed`` map.

Concurrency mode (``--target repro.serve``, repeatable) runs the host-side
sanitizer instead: the LOCK / ORD / LOOP passes over the named packages'
sources (see :mod:`repro.analysis.concurrency`).  ``--select LOCK,ORD``
keeps only the listed rule families; ``--baseline FILE`` drops fingerprints
accepted in a checked-in baseline, and ``--write-baseline FILE`` records
the current findings as that baseline.  The CI gate runs both modes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterator

from ..bench.shapes import FIG8_PANELS, FIG9_PANELS, TABLE3_SHAPES, panel_shapes
from ..core.kernels import registered_kernels
from ..core.planner import ConvPlan, plan_convolution
from ..gpusim.device import DEVICES, DeviceSpec
from ..nhwc.tensor import ConvShape
from ..obs.kernelprof import parse_kernel_token, parse_ofm_token
from .engine import analyze_plan
from .findings import Report, Severity
from .rules import RULES


def _variants_for(alpha: int, r: int) -> list[str]:
    """Variants registered for ``(alpha, r)``, base first."""
    found = {
        k.spec.variant
        for k in registered_kernels(include_extended=True)
        if k.spec.alpha == alpha and k.spec.r == r
    }
    order = {"base": 0, "ruse": 1, "c64": 2}
    return sorted(found, key=lambda v: order.get(v, 99))


def _sweep_plans(verbose_skip: bool) -> Iterator[tuple[str, ConvPlan]]:
    """Every (label, plan) of the benchmark sweep: shapes x registered variants."""
    sources = [("fig8", FIG8_PANELS), ("fig9", FIG9_PANELS), ("table3", TABLE3_SHAPES)]
    for src_name, panels in sources:
        for panel_name, panel in panels.items():
            for shape, alpha in panel_shapes(panel):
                for variant in _variants_for(alpha, shape.fw):
                    if variant == "c64" and (shape.ic % 64 or shape.oc % 64):
                        if verbose_skip:
                            print(
                                f"[analysis] skip c64 for {shape} (channels not x64)",
                                file=sys.stderr,
                            )
                        continue
                    plan = plan_convolution(shape, alpha=alpha, variant=variant)
                    yield f"{src_name}/{panel_name}/{variant}", plan


def _single_plan(shape_token: str, kernel_token: str | None) -> tuple[str, ConvPlan]:
    n, oh, ow, oc = parse_ofm_token(shape_token)
    if kernel_token:
        alpha, r, impl, note = parse_kernel_token(kernel_token)
        if note:
            print(f"[analysis] {note}", file=sys.stderr)
        shape = ConvShape.from_ofm(n, oh, ow, oc, r=r)
        plan = plan_convolution(shape, alpha=alpha, variant=impl)
    else:
        shape = ConvShape.from_ofm(n, oh, ow, oc, r=3)
        plan = plan_convolution(shape)
    return f"shape/{shape_token}", plan


def _render_summary(reports: list[tuple[str, Report]], strict: bool) -> str:
    counts = {s.label: 0 for s in Severity}
    rule_hist: dict[str, int] = {}
    failing = 0
    for _, rep in reports:
        for sev, num in rep.counts().items():
            counts[sev] += num
        for f in rep.findings:
            rule_hist[f.rule_id] = rule_hist.get(f.rule_id, 0) + 1
        if not rep.ok(strict=strict):
            failing += 1
    lines = [
        f"analyzed {len(reports)} plan(s): "
        f"{counts['error']} error(s), {counts['warning']} warning(s), {counts['info']} note(s)"
    ]
    for rule_id in sorted(rule_hist):
        rule = RULES[rule_id]
        lines.append(
            f"  {rule_id} x{rule_hist[rule_id]:<4d} [{rule.severity.label}] "
            f"({rule.section}) {rule.title}"
        )
    verdict = "FAIL" if failing else "PASS"
    mode = "strict" if strict else "errors-only"
    lines.append(f"verdict: {verdict} ({mode}; {failing} failing plan(s))")
    return "\n".join(lines)


_CONC_FAMILIES = ("LOCK", "ORD", "LOOP", "WIT")


def _run_concurrency(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Concurrency mode: LOCK/ORD/LOOP over the ``--target`` packages."""
    from .concurrency import analyze_concurrency, load_baseline, write_baseline

    select = [s for s in (args.select or "").split(",") if s.strip()]
    bad = [s for s in select if s.strip().upper() not in _CONC_FAMILIES]
    if bad:
        parser.error(
            f"unknown rule families in --select: {', '.join(bad)} "
            f"(known: {', '.join(_CONC_FAMILIES)})"
        )
    baseline = load_baseline(args.baseline) if args.baseline else None
    report, graph = analyze_concurrency(
        tuple(args.target), select=select, suppress=args.suppress, baseline=baseline
    )
    if args.write_baseline:
        n = write_baseline(report.findings, args.write_baseline)
        print(f"wrote {n} fingerprint(s) to {args.write_baseline}", file=sys.stderr)
        return 0
    exit_code = 0 if report.ok(strict=args.strict) else 1
    if args.json:
        doc = {
            "strict": args.strict,
            "targets": list(args.target),
            "select": select,
            "baseline": args.baseline,
            "ok": exit_code == 0,
            "lock_order_edges": sorted(
                f"{a} -> {b}" for a, b in graph.edge_pairs()
            ),
            **report.as_dict(),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return exit_code
    print(report.render())
    if args.verbose:
        print("lock-order edges:")
        for a, b in sorted(graph.edge_pairs()):
            print(f"  {a} -> {b}")
    verdict = "PASS" if exit_code == 0 else "FAIL"
    mode = "strict" if args.strict else "errors-only"
    print(f"verdict: {verdict} ({mode}; targets: {', '.join(args.target)})")
    return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static sanitizer for Im2col-Winograd plans (no execution).",
    )
    parser.add_argument(
        "--shape", help="single plan: ofm shape NxOHxOWxOC (else: full benchmark sweep)"
    )
    parser.add_argument(
        "--kernel", help="single plan: kernel token like g8n6r3 or g16r9^c64"
    )
    parser.add_argument(
        "--device",
        default="RTX3060Ti",
        choices=sorted(DEVICES),
        help="device for the resource-budget pass",
    )
    parser.add_argument(
        "--strict", action="store_true", help="fail on warnings, not just errors"
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="RULE",
        help="suppress a rule ID (repeatable), e.g. --suppress SMEM006",
    )
    parser.add_argument(
        "--target",
        action="append",
        default=[],
        metavar="PACKAGE",
        help="concurrency mode: analyze this package's sources (repeatable), "
        "e.g. --target repro.runtime --target repro.serve --target repro.obs",
    )
    parser.add_argument(
        "--select",
        metavar="FAMILIES",
        help="concurrency mode: comma-separated rule-family prefixes to keep, "
        "e.g. --select LOCK,ORD,LOOP",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="concurrency mode: drop findings whose fingerprints this baseline accepts",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="concurrency mode: write current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule registry and exit"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="also print clean plans / skips"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.json:
            doc = {
                rid: {
                    "title": r.title,
                    "severity": r.severity.label,
                    "section": r.section,
                    "fix_hint": r.fix_hint,
                }
                for rid, r in sorted(RULES.items())
            }
            print(json.dumps(doc, indent=2))
        else:
            for rid, rule in sorted(RULES.items()):
                print(f"{rid} [{rule.severity.label:7s}] ({rule.section}) {rule.title}")
        return 0

    unknown = sorted(set(args.suppress) - set(RULES))
    if unknown:
        parser.error(f"unknown rule ID(s) in --suppress: {', '.join(unknown)}")
    if args.target:
        return _run_concurrency(args, parser)
    if args.select or args.baseline or args.write_baseline:
        parser.error("--select/--baseline/--write-baseline require --target")
    if args.kernel and not args.shape:
        parser.error("--kernel requires --shape")

    device: DeviceSpec = DEVICES[args.device]
    if args.shape:
        plans = [_single_plan(args.shape, args.kernel)]
    else:
        plans = list(_sweep_plans(args.verbose))

    reports: list[tuple[str, Report]] = []
    for label, plan in plans:
        rep = analyze_plan(plan, device, suppress=args.suppress)
        reports.append((label, rep))

    exit_code = 0 if all(r.ok(strict=args.strict) for _, r in reports) else 1

    if args.json:
        doc = {
            "device": device.name,
            "strict": args.strict,
            "suppress": sorted(args.suppress),
            "ok": exit_code == 0,
            "plans": [
                {"label": label, **rep.as_dict()}
                for label, rep in reports
                if rep.findings or rep.suppressed or args.shape
            ],
            "summary": {
                "analyzed": len(reports),
                "failing": sum(
                    1 for _, r in reports if not r.ok(strict=args.strict)
                ),
                "rules": {
                    rid: sum(1 for _, r in reports for f in r.findings if f.rule_id == rid)
                    for rid in sorted({f.rule_id for _, r in reports for f in r.findings})
                },
            },
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return exit_code

    for label, rep in reports:
        interesting = not rep.ok(strict=args.strict) or (args.verbose and rep.findings)
        if args.shape or interesting:
            print(f"--- {label}")
            print(rep.render())
    print(_render_summary(reports, args.strict))
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
