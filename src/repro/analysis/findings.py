"""Typed findings and reports of the kernel sanitizer.

A :class:`Finding` is one rule violation (or note) discovered by a static
pass: the rule it violates, where it was found (kernel / segment / stage),
a human-readable message and a machine-readable ``context`` dict.  Findings
never carry execution state — every field is derivable from the plan alone,
which is what makes the analyzer safe to run in CI before any simulation.

A :class:`Report` aggregates the findings of one analysis run (typically one
:class:`repro.core.planner.ConvPlan` on one device), supports per-rule
suppression and renders to text or JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["Severity", "Finding", "Report"]


class Severity(enum.IntEnum):
    """Finding severity; comparable (ERROR > WARNING > INFO)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One typed rule violation.

    Attributes
    ----------
    rule_id:
        Registry key into :data:`repro.analysis.rules.RULES`.
    severity:
        Effective severity (defaults to the rule's; passes may downgrade).
    message:
        One-line human-readable description of the specific violation.
    section:
        Paper section the violated invariant comes from (e.g. ``"§5.5"``).
    fix_hint:
        Actionable suggestion, from the rule registry.
    location:
        Where in the plan: kernel name, segment index, stage, ... (free-form
        but stable keys: ``kernel``, ``segment``, ``stage``, ``device``).
    context:
        Machine-readable evidence (offsets, degrees, byte counts, ...).
    """

    rule_id: str
    severity: Severity
    message: str
    section: str
    fix_hint: str
    location: dict[str, Any] = field(default_factory=dict)
    context: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "section": self.section,
            "fix_hint": self.fix_hint,
            "location": dict(self.location),
            "context": dict(self.context),
        }

    def render(self) -> str:
        loc = ",".join(f"{k}={v}" for k, v in self.location.items())
        where = f" [{loc}]" if loc else ""
        return f"{self.severity.label.upper():7s} {self.rule_id} ({self.section}){where}: {self.message}"


@dataclass(frozen=True)
class Report:
    """Findings of one analysis run, with suppression applied.

    ``subject`` names what was analysed (shape/kernel/device); ``suppressed``
    records which rule IDs were filtered and how many findings each dropped.
    """

    subject: dict[str, Any]
    findings: tuple[Finding, ...]
    suppressed: dict[str, int] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def by_severity(self, severity: Severity) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def worst(self) -> Severity | None:
        return max((f.severity for f in self.findings), default=None)

    def ok(self, *, strict: bool = False) -> bool:
        """No errors (``strict``: no warnings either; INFO never fails)."""
        floor = Severity.WARNING if strict else Severity.ERROR
        return all(f.severity < floor for f in self.findings)

    def rule_ids(self) -> list[str]:
        """Distinct rule IDs present, sorted."""
        return sorted({f.rule_id for f in self.findings})

    def counts(self) -> dict[str, int]:
        """Finding count per severity label (all three keys always present)."""
        out = {s.label: 0 for s in Severity}
        for f in self.findings:
            out[f.severity.label] += 1
        return out

    def merged_with(self, other: "Report") -> "Report":
        """Concatenate two reports (sweep aggregation)."""
        sup = dict(self.suppressed)
        for rule, n in other.suppressed.items():
            sup[rule] = sup.get(rule, 0) + n
        return Report(
            subject={"merged": True},
            findings=self.findings + other.findings,
            suppressed=sup,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "subject": dict(self.subject),
            "ok": self.ok(),
            "ok_strict": self.ok(strict=True),
            "counts": self.counts(),
            "suppressed": dict(self.suppressed),
            "findings": [f.as_dict() for f in self.findings],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True, default=str)

    def render(self) -> str:
        """Text report: subject line, findings, severity summary."""
        subject = ", ".join(f"{k}={v}" for k, v in self.subject.items())
        lines = [f"analysis: {subject or '(aggregate)'}"]
        for f in sorted(self.findings, key=lambda f: (-f.severity, f.rule_id)):
            lines.append("  " + f.render())
        counts = self.counts()
        lines.append(
            "  -> {error} error(s), {warning} warning(s), {info} note(s)".format(**counts)
        )
        if self.suppressed:
            sup = ", ".join(f"{k} x{v}" for k, v in sorted(self.suppressed.items()))
            lines.append(f"  -> suppressed: {sup}")
        return "\n".join(lines)


def apply_suppressions(
    findings: Iterable[Finding], suppress: Iterable[str] = ()
) -> tuple[tuple[Finding, ...], dict[str, int]]:
    """Filter findings whose rule ID is suppressed; count what was dropped."""
    suppress_set = set(suppress)
    kept: list[Finding] = []
    dropped: dict[str, int] = {}
    for f in findings:
        if f.rule_id in suppress_set:
            dropped[f.rule_id] = dropped.get(f.rule_id, 0) + 1
        else:
            kept.append(f)
    return tuple(kept), dropped
