"""The sanitizer's rule registry: every invariant the analyzer enforces.

Each rule is a named, paper-anchored invariant with a default severity and a
fix hint.  The registry is the single source of truth for rule metadata —
passes create findings *through* :func:`make_finding` so rule IDs, sections
and hints can never drift from what the docs table says.

Rule families
-------------
``PLAN``  §4/§5.5 plan contracts: alpha arithmetic, layout/stride envelope,
          boundary-segment cover and GEMM-tail structure.
``BND``   §4.1/§5.5 gather-index bounds: every im2col offset stream must
          land inside the (implicitly padded) input.
``SMEM``  §5.1 double-buffer phase hazards and §5.2 bank-conflict lint.
``RES``   §4.1 resource budgets against :mod:`repro.gpusim.device` limits.
``COND``  §5.3/§6.2.2 transform conditioning of the interpolation points.

Host-side rule families (DESIGN.md "Host concurrency model", sections
``§H1``–``§H4`` — the host analogue of the paper's §5.1 interval proofs,
applied to the runtime/serve/obs thread and event-loop surface):

``LOCK``  §H1 lock discipline: guarded-attribute access vs its lock.
``ORD``   §H2 lock ordering: static acquisition graph, cycles, holds.
``LOOP``  §H3 event-loop hygiene: blocking work inside ``async def``.
``WIT``   §H4 dynamic witness: runtime evidence vs the static model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .findings import Finding, Severity

__all__ = ["Rule", "RULES", "make_finding"]


@dataclass(frozen=True)
class Rule:
    """One registered invariant: ID, default severity, paper anchor, hint."""

    rule_id: str
    title: str
    severity: Severity
    section: str
    fix_hint: str


_RULE_LIST = [
    # --- plan contracts (§4.1 / §5.5 / §5.6 / §5.7) -----------------------
    Rule(
        "PLAN001",
        "alpha arithmetic: alpha = n + r - 1 must hold for every kernel",
        Severity.ERROR,
        "§4.1",
        "derive n from alpha and r (n = alpha - r + 1) instead of storing it",
    ),
    Rule(
        "PLAN002",
        "layout/stride contract: Winograd plans require unit stride and padding inside the filter envelope",
        Severity.ERROR,
        "§5.1/§5.7",
        "route non-unit-stride or over-padded problems to the GEMM path",
    ),
    Rule(
        "PLAN003",
        "segment cover: width segments must tile [0, OW) exactly once, sorted and disjoint",
        Severity.ERROR,
        "§5.5",
        "rebuild the segmentation with repro.core.boundary.plan_width_segments",
    ),
    Rule(
        "PLAN004",
        "segment divisibility: each Winograd segment width must be a multiple of its kernel's coverage",
        Severity.ERROR,
        "§5.5",
        "shrink the segment to the largest covered prefix; hand the rest down the chain",
    ),
    Rule(
        "PLAN005",
        "GEMM tail structure: at most one GEMM segment, and it must terminate the list",
        Severity.ERROR,
        "§5.5",
        "the GEMM kernel mops up only the final sliver; merge stray GEMM segments",
    ),
    Rule(
        "PLAN006",
        "GEMM tail reducible: tail at least as wide as a registered kernel's coverage",
        Severity.WARNING,
        "§5.5",
        "a smaller-coverage Gamma kernel could absorb part of the tail; extend the chain",
    ),
    Rule(
        "PLAN007",
        "c64 channel contract: the c64 variant assumes IC and OC are multiples of 64",
        Severity.WARNING,
        "§5.6",
        "use the base (or ruse) variant when channels are not multiples of 64",
    ),
    # --- gather-index bounds (ASan-style, §4.1 / §5.5) --------------------
    Rule(
        "BND001",
        "gather underflow: an im2col offset reads before the padded input start",
        Severity.ERROR,
        "§4.1/§5.5",
        "clamp the segment start / padding so offsets stay >= -(pad)",
    ),
    Rule(
        "BND002",
        "gather overflow: an im2col offset reads past the padded input end",
        Severity.ERROR,
        "§4.1/§5.5",
        "shrink the segment or tile count so the last tile ends inside the padded input",
    ),
    Rule(
        "BND003",
        "GEMM-tail strip bounds: the tail's input strip escapes the padded input",
        Severity.ERROR,
        "§5.5",
        "recompute the tail strip as [start-pw, start-pw+width+fw-1) and re-clip",
    ),
    # --- SMEM pipeline hazards and bank conflicts (§5.1 / §5.2) ------------
    Rule(
        "SMEM001",
        "WAR hazard: a tile load overwrites an SMEM buffer a compute phase is still reading",
        Severity.ERROR,
        "§5.1",
        "double-buffer the tile arrays (alpha in {4, 8}) or serialise load/compute with __syncthreads",
    ),
    Rule(
        "SMEM002",
        "RAW hazard: a compute phase reads an SMEM buffer before its load/transform completes",
        Severity.ERROR,
        "§5.1",
        "insert the per-buffer-swap __syncthreads the double-buffer pipeline requires",
    ),
    Rule(
        "SMEM003",
        "outer-product load conflicts: Z-lane loads must be conflict-free (degree 1)",
        Severity.ERROR,
        "§5.2",
        "restore the Figure 4 Z-shaped laneIdx arrangement for Gs/Ds loads",
    ),
    Rule(
        "SMEM004",
        "output-staging conflicts: padded Ys staging stores must be conflict-free (degree 1)",
        Severity.ERROR,
        "§5.2",
        "restore the Ys last-dimension padding ([...][16+4] etc.)",
    ),
    Rule(
        "SMEM005",
        "store-mitigation regression: the mitigated store pattern conflicts more than the naive one",
        Severity.WARNING,
        "§5.2",
        "the swizzle/padding parameters are wrong for this blocking; re-derive them",
    ),
    Rule(
        "SMEM006",
        "residual store conflicts: main-loop stores above degree 1 even with mitigations on",
        Severity.INFO,
        "§5.2",
        "known residual of the column-store pattern; informational only",
    ),
    # --- resource budgets (§4.1) ------------------------------------------
    Rule(
        "RES001",
        "SMEM budget: block shared memory exceeds the device per-block cap",
        Severity.ERROR,
        "§4.1",
        "reduce alpha (the 49152 B cap is where alpha <= 24 comes from) or drop the double buffer",
    ),
    Rule(
        "RES002",
        "thread budget: threads per block exceed the 1024 hardware cap",
        Severity.ERROR,
        "§4.1",
        "the Gamma kernels use 16x16 (base/c64) or 16x8 (ruse) threads; restore that blocking",
    ),
    Rule(
        "RES003",
        "residency: the block cannot be resident on the device (registers/SMEM/threads)",
        Severity.ERROR,
        "§4.1",
        "cut per-thread registers or SMEM until at least one block fits per SM",
    ),
    Rule(
        "RES004",
        "occupancy floor: achieved occupancy is below 25%",
        Severity.INFO,
        "§4.1/§5.4",
        "expected for ruse variants (merged threads halve parallelism); informational",
    ),
    # --- transform conditioning (§5.3 / §6.2.2) ----------------------------
    Rule(
        "COND001",
        "transform conditioning: point set conditions worse than the paper's canonical points",
        Severity.WARNING,
        "§5.3",
        "use repro.core.points.points_for (0, then sign-balanced m, -m, 1/m, -1/m pairs)",
    ),
    Rule(
        "COND002",
        "degenerate points: interpolation points must be distinct (and finite)",
        Severity.ERROR,
        "§5.3",
        "duplicate points make the Toom-Cook system singular; pick distinct points",
    ),
    Rule(
        "COND003",
        "magnitude disparity: transform-matrix entries exceed the half-precision envelope",
        Severity.INFO,
        "§6.2.2",
        "alpha=16 schemes are float32-only (fused.py enforces this at run time)",
    ),
    # --- host lock discipline (DESIGN.md §H1) ------------------------------
    Rule(
        "LOCK001",
        "guarded write: a @guarded_by attribute is written outside its lock",
        Severity.ERROR,
        "§H1",
        "wrap the write in `with self.<lock>:` or move it into an init-exempt method",
    ),
    Rule(
        "LOCK002",
        "guarded read: a @guarded_by attribute is read outside its lock",
        Severity.WARNING,
        "§H1",
        "snapshot the state under the lock and export the snapshot",
    ),
    Rule(
        "LOCK003",
        "guard registry rot: a registered class, lock or attribute no longer exists in source",
        Severity.ERROR,
        "§H1",
        "update repro.analysis.concurrency.registry to match the refactored code",
    ),
    Rule(
        "LOCK004",
        "unregistered lock: a threading.Lock/RLock site has no guard registration",
        Severity.WARNING,
        "§H1",
        "register the lock and the attributes it guards in repro.analysis.concurrency.registry",
    ),
    # --- host lock ordering (DESIGN.md §H2) --------------------------------
    Rule(
        "ORD001",
        "lock-order cycle: the static acquisition graph contains a deadlock-capable cycle",
        Severity.ERROR,
        "§H2",
        "impose a global acquisition order (or release the outer lock before the inner acquire)",
    ),
    Rule(
        "ORD002",
        "callback under lock: a user-supplied callable is invoked while a lock is held",
        Severity.WARNING,
        "§H2",
        "snapshot state under the lock, release it, then invoke the callback",
    ),
    Rule(
        "ORD003",
        "blocking join under lock: shutdown/join/result is awaited while a lock is held",
        Severity.WARNING,
        "§H2",
        "swap the resource out under the lock, then join it after release (engine.shutdown idiom)",
    ),
    # --- event-loop hygiene (DESIGN.md §H3) --------------------------------
    Rule(
        "LOOP001",
        "blocking call on the event loop: a known-blocking API is reachable inside async def",
        Severity.ERROR,
        "§H3",
        "hop to a worker via loop.run_in_executor (the scheduler's _execute idiom)",
    ),
    Rule(
        "LOOP002",
        "threading lock on the event loop: async def acquires a threading lock inline",
        Severity.WARNING,
        "§H3",
        "keep the critical section O(fields) and uncontended, or move it to the executor",
    ),
    Rule(
        "LOOP003",
        "heavy sync work on the event loop: compute/teardown call without an executor hop",
        Severity.WARNING,
        "§H3",
        "run NumPy contractions and pool shutdowns in an executor, not on the loop",
    ),
    Rule(
        "LOOP004",
        "await under threading lock: async def awaits while holding a threading lock",
        Severity.ERROR,
        "§H3",
        "never hold a threading lock across an await; release before suspension",
    ),
    # --- dynamic witness cross-check (DESIGN.md §H4) ------------------------
    Rule(
        "WIT001",
        "witness order mismatch: a runtime lock-order edge is absent from the static model",
        Severity.ERROR,
        "§H4",
        "the static graph rotted: teach lockorder.py the call path the witness observed",
    ),
    Rule(
        "WIT002",
        "witness guard violation: a guarded attribute was accessed without its lock at runtime",
        Severity.ERROR,
        "§H4",
        "the access path escapes the lock; guard it (and check the @guarded_by registration)",
    ),
]

#: rule_id -> Rule for every registered invariant.
RULES: dict[str, Rule] = {r.rule_id: r for r in _RULE_LIST}


def make_finding(
    rule_id: str,
    message: str,
    *,
    severity: Severity | None = None,
    location: dict[str, Any] | None = None,
    context: dict[str, Any] | None = None,
) -> Finding:
    """Create a finding for a registered rule (KeyError on unknown IDs)."""
    rule = RULES[rule_id]
    return Finding(
        rule_id=rule.rule_id,
        severity=severity if severity is not None else rule.severity,
        message=message,
        section=rule.section,
        fix_hint=rule.fix_hint,
        location=location or {},
        context=context or {},
    )
