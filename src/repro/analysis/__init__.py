"""Static analysis ("kernel sanitizer") for the Im2col-Winograd stack.

Five execution-free passes prove, per :class:`repro.core.planner.ConvPlan`:

1. **Plan contracts** — alpha arithmetic, stride/padding envelope, §5.5
   segment cover and GEMM-tail structure (``PLAN*``).
2. **Gather-index bounds** — every im2col offset stream lands inside the
   padded input (``BND*``).
3. **SMEM hazards & bank conflicts** — §5.1 pipeline phase intervals and
   §5.2 layout replay (``SMEM*``).
4. **Resource budgets** — SMEM/thread/register residency on a device
   (``RES*``).
5. **Transform conditioning** — §5.3 interpolation-point quality
   (``COND*``).

A sixth family covers the *host* side of the stack: the concurrency
sanitizer (:mod:`repro.analysis.concurrency`) runs execution-free AST
passes over ``repro.runtime`` / ``repro.serve`` / ``repro.obs`` — lock
discipline (``LOCK*``), lock-order deadlock detection (``ORD*``),
event-loop hygiene (``LOOP*``) — plus an opt-in runtime witness
(``WIT*``) that cross-checks the static model against real thread
interleavings.

Run ``python -m repro.analysis`` to sweep every benchmark shape,
``python -m repro.analysis --target repro.serve`` for the concurrency
passes, or call :func:`analyze_plan` / :func:`analyze_concurrency`
directly.
"""

from .bounds import OffsetStream, gather_bounds_findings, segment_offset_streams
from .budget import OCCUPANCY_FLOOR, resource_budget_findings
from .conditioning import (
    CONDITION_TOLERANCE,
    MAGNITUDE_ENVELOPE,
    conditioning_findings,
    vandermonde_condition,
)
from .contracts import plan_contract_findings
from .engine import AnalysisConfig, analyze_plan
from .findings import Finding, Report, Severity, apply_suppressions
from .hazards import (
    Hazard,
    PhaseInterval,
    StageDegrees,
    bank_conflict_findings,
    detect_hazards,
    findings_from_degrees,
    pipeline_hazard_findings,
    pipeline_intervals,
    stage_degrees,
)
from .concurrency import (
    GUARDS,
    GuardSpec,
    LockWitness,
    analyze_concurrency,
    guarded_by,
)
from .rules import RULES, Rule, make_finding

__all__ = [
    "Severity",
    "Finding",
    "Report",
    "apply_suppressions",
    "Rule",
    "RULES",
    "make_finding",
    "plan_contract_findings",
    "OffsetStream",
    "segment_offset_streams",
    "gather_bounds_findings",
    "PhaseInterval",
    "Hazard",
    "pipeline_intervals",
    "detect_hazards",
    "pipeline_hazard_findings",
    "StageDegrees",
    "stage_degrees",
    "bank_conflict_findings",
    "findings_from_degrees",
    "OCCUPANCY_FLOOR",
    "resource_budget_findings",
    "MAGNITUDE_ENVELOPE",
    "CONDITION_TOLERANCE",
    "vandermonde_condition",
    "conditioning_findings",
    "AnalysisConfig",
    "analyze_plan",
    "analyze_concurrency",
    "GuardSpec",
    "GUARDS",
    "guarded_by",
    "LockWitness",
]
