"""Pass 5 — transform conditioning lint (§5.3 / §6.2.2).

The numerical quality of an ``F(n, r)`` scheme is decided before any kernel
runs, by the interpolation points: the Toom-Cook system is a Vandermonde
system, and its condition number governs how much the float transforms
amplify rounding error.  §5.3's canonical stream
``{0, 1, -1, 2, -2, 1/2, -1/2, ...}`` (small magnitudes, sign-balanced) is
the paper's answer; this pass scores any candidate point set against it:

* duplicate or non-finite points make the system singular — outright
  ERROR (COND002), matching the exact solver's failure mode;
* a candidate whose Vandermonde condition number is an order of magnitude
  worse than the canonical set's gets a WARNING (COND001);
* for the canonical schemes themselves, transform-matrix entries beyond the
  half-precision-friendly magnitude envelope are noted (COND003, INFO) —
  this is the §6.2.2 explanation of the alpha=16 accuracy cliff, and why
  ``fused.py`` pins those schemes to float32.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..core.points import points_for
from ..core.transforms import max_matrix_magnitude
from .findings import Finding
from .rules import make_finding

__all__ = [
    "MAGNITUDE_ENVELOPE",
    "CONDITION_TOLERANCE",
    "vandermonde_condition",
    "conditioning_findings",
]

#: Largest transform-matrix entry magnitude tolerated without a COND003 note.
#: float16 overflows at 65504; entries past ~1e4 also shred fp32 mantissas
#: when mixed with unit-magnitude terms (§6.2.2's disparity argument).
MAGNITUDE_ENVELOPE = 1.0e4

#: COND001 fires when a candidate conditions this many times worse than the
#: canonical point set of the same scheme.
CONDITION_TOLERANCE = 10.0


def vandermonde_condition(points: Sequence[Fraction | float]) -> float:
    """2-norm condition number of the square Vandermonde of ``points``.

    Returns ``inf`` for singular systems (duplicate points).
    """
    vals = [float(p) for p in points]
    a = len(vals)
    vand = np.array([[v**k for k in range(a)] for v in vals], dtype=np.float64)
    try:
        cond = float(np.linalg.cond(vand))
    except np.linalg.LinAlgError:
        return float("inf")
    return cond


@lru_cache(maxsize=None)
def _canonical_condition(n: int, r: int) -> float:
    return vandermonde_condition(tuple(points_for(n, r)))


def conditioning_findings(
    n: int,
    r: int,
    *,
    points: Sequence[Fraction | float] | None = None,
) -> list[Finding]:
    """COND-rule findings of one ``F(n, r)`` scheme's interpolation points.

    ``points`` overrides the finite point set (ablation / corruption hook);
    the default is the canonical §5.3 stream, for which only the COND003
    magnitude note can fire.
    """
    findings: list[Finding] = []
    loc = {"scheme": f"F({n},{r})"}
    canonical = points is None
    pts = list(points_for(n, r)) if canonical else list(points)

    dupes = sorted({str(p) for p in pts if pts.count(p) > 1})
    bad = [p for p in pts if not np.isfinite(float(p))]
    if dupes or bad:
        detail = []
        if dupes:
            detail.append(f"duplicated: {', '.join(dupes)}")
        if bad:
            detail.append(f"non-finite: {', '.join(str(p) for p in bad)}")
        findings.append(
            make_finding(
                "COND002",
                f"F({n},{r}) point set is degenerate ({'; '.join(detail)}); "
                f"the Toom-Cook system is singular",
                location=loc,
                context={"points": [str(p) for p in pts]},
            )
        )
        return findings  # a singular system has no meaningful condition number

    if not canonical:
        cond = vandermonde_condition(tuple(pts))
        ref = _canonical_condition(n, r)
        if cond > CONDITION_TOLERANCE * ref:
            findings.append(
                make_finding(
                    "COND001",
                    f"F({n},{r}) candidate points condition at {cond:.3g}, "
                    f"{cond / ref:.1f}x the canonical {ref:.3g} "
                    f"(tolerance {CONDITION_TOLERANCE:.0f}x)",
                    location=loc,
                    context={
                        "condition": cond,
                        "canonical_condition": ref,
                        "points": [str(p) for p in pts],
                    },
                )
            )
        return findings

    magnitude = max_matrix_magnitude(n, r)
    if magnitude > MAGNITUDE_ENVELOPE:
        findings.append(
            make_finding(
                "COND003",
                f"F({n},{r}) transform entries reach magnitude {magnitude:.3g} "
                f"(> {MAGNITUDE_ENVELOPE:.0e}); scheme is float32-only",
                location=loc,
                context={
                    "max_magnitude": magnitude,
                    "envelope": MAGNITUDE_ENVELOPE,
                    "condition": _canonical_condition(n, r),
                },
            )
        )
    return findings
