"""Pass 2 — gather-index bounds analysis (ASan for the fused im2col gather).

The fused kernels never materialise the im2col matrix: every load address is
computed on the fly from ``(segment start, tile index, fh offset, padding)``.
The Indirect Convolution Algorithm (Dukhan 2019) shows this is exactly where
silent out-of-bounds reads hide — an index stream that escapes the padded
input reads memory that is neither data nor declared zero padding.

This pass symbolically enumerates the offset stream of every segment at tile
granularity and proves containment in the *padded* input

.. math::

    rows \\in [-ph, IH + ph), \\qquad cols \\in [-pw, IW + pw)

(coordinates in the unpadded frame; negative / overhanging offsets inside
that envelope are the implicit zero padding the kernels realise with
conditional statements, §5.1).  Anything outside is an OOB read (BND001/002
for Winograd segments, BND003 for the GEMM tail strip).

The stream is exact, not sampled: for a Winograd segment the gathered
columns per filter row are ``{start - pw + t*n + a : t < T, a < alpha}``
whose extrema the pass computes in closed form per tile — the same index
arithmetic :func:`repro.nhwc.tiles.extract_width_tiles` (and the CUDA
kernels' load addresses) use, so a clean bill here is a proof about the
real gather.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.boundary import Segment
from ..core.planner import ConvPlan
from ..nhwc.tensor import ConvShape
from .findings import Finding
from .rules import make_finding

__all__ = ["OffsetStream", "segment_offset_streams", "gather_bounds_findings"]


@dataclass(frozen=True)
class OffsetStream:
    """Closed-form extent of one segment's gather stream (unpadded coords).

    Rows/cols are half-open intervals of every address the segment's loads
    touch across all filter rows and tiles.  ``reads_padding`` records
    whether any offset lands in the implicit-zero region (legal; the §5.1
    conditional-statement padding handles it).
    """

    segment: str
    kind: str  # "winograd" or "gemm"
    row_lo: int
    row_hi: int  # exclusive
    col_lo: int
    col_hi: int  # exclusive
    tiles: int

    def reads_padding(self, shape: ConvShape) -> bool:
        return (
            self.row_lo < 0
            or self.col_lo < 0
            or self.row_hi > shape.ih
            or self.col_hi > shape.iw
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "segment": self.segment,
            "kind": self.kind,
            "rows": [self.row_lo, self.row_hi],
            "cols": [self.col_lo, self.col_hi],
            "tiles": self.tiles,
        }


def _winograd_stream(seg: Segment, shape: ConvShape) -> OffsetStream:
    """Exact gather extent of one Winograd segment.

    Per filter row ``f`` the tile gather reads unpadded rows
    ``[f - ph, f - ph + oh)``; unioned over ``f in [0, FH)`` that is
    ``[-ph, FH - 1 - ph + oh)``.  Columns: tile ``t`` reads
    ``[start - pw + t*n, start - pw + t*n + alpha)``; the union over the
    ``T = width / n`` tiles is contiguous because ``alpha >= n``.
    """
    spec = seg.kernel.spec  # type: ignore[union-attr]
    tiles = seg.width // spec.n if seg.width % spec.n == 0 else -(-seg.width // spec.n)
    col_lo = seg.start - shape.pw
    col_hi = col_lo + (tiles - 1) * spec.n + spec.alpha
    return OffsetStream(
        segment=seg.name,
        kind="winograd",
        row_lo=-shape.ph,
        row_hi=shape.fh - 1 - shape.ph + shape.oh,
        col_lo=col_lo,
        col_hi=col_hi,
        tiles=tiles,
    )


def _gemm_stream(seg: Segment, shape: ConvShape) -> OffsetStream:
    """Gather extent of the GEMM tail's input strip (see ``gemm_segment``)."""
    col_lo = seg.start - shape.pw
    return OffsetStream(
        segment=seg.name,
        kind="gemm",
        row_lo=-shape.ph,
        row_hi=shape.fh - 1 - shape.ph + shape.oh,
        col_lo=col_lo,
        col_hi=col_lo + seg.width + shape.fw - 1,
        tiles=seg.width,
    )


def segment_offset_streams(plan: ConvPlan) -> list[OffsetStream]:
    """The symbolic gather stream of every segment in the plan."""
    shape = plan.shape
    return [
        _gemm_stream(s, shape) if s.is_gemm else _winograd_stream(s, shape)
        for s in plan.segments
    ]


def gather_bounds_findings(plan: ConvPlan) -> list[Finding]:
    """BND-rule findings: offsets escaping the padded input (empty = proven safe)."""
    findings: list[Finding] = []
    shape = plan.shape
    row_min, row_max = -shape.ph, shape.ih + shape.ph  # max exclusive
    col_min, col_max = -shape.pw, shape.iw + shape.pw
    streams = segment_offset_streams(plan)
    for i, (seg, stream) in enumerate(zip(plan.segments, streams, strict=True)):
        loc = {"segment": i, "kernel": seg.name}
        ctx = stream.as_dict()
        if stream.kind == "gemm":
            if stream.col_lo < col_min or stream.col_hi > col_max:
                findings.append(
                    make_finding(
                        "BND003",
                        f"GEMM tail strip cols [{stream.col_lo}, {stream.col_hi}) escape "
                        f"the padded input [{col_min}, {col_max})",
                        location=loc,
                        context=ctx,
                    )
                )
            continue
        if stream.row_lo < row_min or stream.col_lo < col_min:
            findings.append(
                make_finding(
                    "BND001",
                    f"{seg.name}: gather reads from (row {stream.row_lo}, col {stream.col_lo}) "
                    f"before the padded input start (row >= {row_min}, col >= {col_min})",
                    location=loc,
                    context=ctx,
                )
            )
        if stream.row_hi > row_max or stream.col_hi > col_max:
            findings.append(
                make_finding(
                    "BND002",
                    f"{seg.name}: gather reads up to (row {stream.row_hi}, col {stream.col_hi}) "
                    f"exclusive, past the padded input end (row <= {row_max}, col <= {col_max})",
                    location=loc,
                    context=ctx,
                )
            )
    return findings
