"""Beyond 2D forward convolution: deconvolution, 1D and 3D (§4.2, §5.1).

Three extensions the paper describes and this library ships:

  1. **Deconvolution** — the paper's kernels serve "unit-stride 2D
     convolution and deconvolution" with the 180-degree filter rotation
     fused into the filter transform.  Here: a tiny encoder/decoder round
     trip where the decoder is `deconv2d_im2col_winograd`.
  2. **1D convolution** — sequences (N, W, C), e.g. audio features.
  3. **3D convolution** — volumes (N, D, H, W, C), e.g. video or medical
     stacks; the decomposition adds an `fd` loop to the accumulator and
     Stage 2 is untouched.

Run:  python examples/beyond_2d.py
"""

import numpy as np

from repro.core import (
    conv1d_im2col_winograd,
    conv2d_im2col_winograd,
    conv3d_im2col_winograd,
    deconv2d_im2col_winograd,
)

rng = np.random.default_rng(21)

# 1. Encoder/decoder round trip -------------------------------------------
print("== deconvolution: encoder/decoder geometry ==")
x = rng.standard_normal((4, 24, 24, 8)).astype(np.float32)
w_enc = rng.standard_normal((16, 3, 3, 8)).astype(np.float32) * 0.2
latent = conv2d_im2col_winograd(x, w_enc, ph=0, pw=0)  # valid conv shrinks
print(f"  encode: {x.shape} -> {latent.shape}")
recon = deconv2d_im2col_winograd(latent, w_enc, ph=0, pw=0)  # grows back
print(f"  decode: {latent.shape} -> {recon.shape}")
assert recon.shape == x.shape

# Adjoint identity: <conv(x, w), y> == <x, deconv(y, w)>.
probe = rng.standard_normal(latent.shape).astype(np.float32)
lhs = float((latent.astype(np.float64) * probe).sum())
rhs = float((x.astype(np.float64) * deconv2d_im2col_winograd(probe, w_enc, ph=0, pw=0)).sum())
print(f"  adjoint identity: <conv(x,w),y>={lhs:.3f}  <x,deconv(y,w)>={rhs:.3f}")
assert abs(lhs - rhs) < 1e-2 * abs(lhs)

# 2. 1D sequences ------------------------------------------------------------
print("\n== 1D: sequence features ==")
seq = rng.standard_normal((16, 200, 12)).astype(np.float32)  # (N, W, C)
w1d = rng.standard_normal((24, 7, 12)).astype(np.float32) * 0.1
feat = conv1d_im2col_winograd(seq, w1d)  # Gamma_16(10,7) along the width
print(f"  {seq.shape} -*- {w1d.shape} -> {feat.shape}")

# 3. 3D volumes ---------------------------------------------------------------
print("\n== 3D: volumetric convolution ==")
vol = rng.standard_normal((2, 10, 12, 26, 4)).astype(np.float32)  # (N, D, H, W, C)
w3d = rng.standard_normal((8, 3, 3, 3, 4)).astype(np.float32) * 0.2
out = conv3d_im2col_winograd(vol, w3d)
print(f"  {vol.shape} -*- {w3d.shape} -> {out.shape}")

# Cross-check the 3D path against a direct einsum on one sample.
xp = np.pad(vol[:1].astype(np.float64), ((0, 0), (1, 1), (1, 1), (1, 1), (0, 0)))
win = np.lib.stride_tricks.sliding_window_view(xp, (3, 3, 3), axis=(1, 2, 3))
ref = np.einsum("ndhwjabc,oabcj->ndhwo", win, w3d.astype(np.float64))
rel = np.abs(out[:1] - ref).max() / np.abs(ref).max()
print(f"  max relative error vs direct 3D: {rel:.2e}")
assert rel < 1e-4
print("\nall checks passed")
