"""Train a CNN end-to-end with Im2col-Winograd convolutions (Experiment 3).

Builds a VGG16 (5x5-filter variant, so the convolutions run on
Gamma_8(4,5)) on a synthetic Cifar10-like dataset, trains it with Adam
under both convolution engines — the fused Winograd engine ("Alpha") and
the im2col-GEMM engine (the PyTorch stand-in) — and prints the head-to-head
that Tables 4/5 report: loss trajectory, accuracy, accounted memory.

Run:  python examples/train_cnn.py          (~1 minute)
"""

import numpy as np

from repro.dlframe import Adam, Trainer, synthetic_cifar10
from repro.dlframe.models import vgg16x5

IMAGE, CLASSES = 16, 10

train, test = synthetic_cifar10(train=512, test=128, image=IMAGE, noise=0.25, seed=3)
print(f"synthetic Cifar10: {len(train)} train / {len(test)} test, {IMAGE}x{IMAGE}x3\n")

records = {}
for engine in ("winograd", "gemm"):
    model = vgg16x5(classes=CLASSES, image=IMAGE, width_mult=0.25, engine=engine, seed=11)
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), record_every=2)
    rec = trainer.fit(train, test, epochs=4, batch_size=64, seed=17)
    records[engine] = rec
    tag = "Alpha (winograd)" if engine == "winograd" else "PyTorch-like (gemm)"
    print(
        f"{tag:<20} loss {rec.losses[0]:.3f} -> {rec.losses[-1]:.3f}  "
        f"train acc {rec.train_accuracy:.1%}  test acc {rec.test_accuracy:.1%}  "
        f"memory {rec.memory_bytes / 1e6:.0f} MB  "
        f"({rec.seconds_per_epoch:.2f} s/epoch wall)"
    )

a, p = records["winograd"], records["gemm"]
gap = max(abs(x - y) for x, y in zip(a.losses, p.losses))
print(f"\nmax loss-curve gap between engines: {gap:.4f} (convergence parity)")
print(f"memory saving of the fused engine: "
      f"{(p.memory_bytes - a.memory_bytes) / 1e6:.1f} MB (no im2col workspace)")
assert a.train_accuracy > 0.6 and p.train_accuracy > 0.6
