"""Kernel planning and the GPU model — a tour of the paper's design space.

Walks through the machinery behind Sections 4-5:

  1. the kernel registry (which Gamma_alpha(n, r) exist, their blocking),
  2. the theoretical acceleration curve Phi(r) = nr/(n+r-1) and why
     Gamma_8(4,5)/(5,4) are the sweet spot (§6.1.2),
  3. boundary segmentation across an OW sweep (Figure 7),
  4. occupancy and SMEM budgets (the alpha <= 24 argument of §4.1),
  5. a mini Figure-8 slice: modeled Gflop/s for one shape across kernels.

Run:  python examples/kernel_planning.py
"""

from repro.bench import theoretical_acceleration
from repro.core import (
    get_kernel,
    plan_width_segments,
    registered_kernels,
    variant_spec,
)
from repro.gpusim import RTX3060TI, estimate_conv, estimate_cudnn_gemm, occupancy_for
from repro.nhwc import ConvShape

# 1. Registry --------------------------------------------------------------
print("== registered kernels (shipped widths 2-9) ==")
for k in registered_kernels():
    s = k.spec
    print(
        f"  {k.name:<22} block {s.bn}x{s.bm}x{s.bk}  threads {s.threads:>3}  "
        f"SMEM {s.smem_bytes:>6} B  {'double-buffered' if s.double_buffered else 'single'}"
    )

# 2. Theoretical acceleration ----------------------------------------------
print("\n== Phi(r) = nr/(n+r-1) for alpha = 8 (peaks at r = 4, 5) ==")
for r in range(2, 8):
    n = 9 - r
    bar = "#" * int(theoretical_acceleration(n, r) * 10)
    print(f"  r={r}: Phi={theoretical_acceleration(n, r):.3f} {bar}")

# 3. Boundary segmentation --------------------------------------------------
print("\n== Figure 7: OW segmentation for FW=3 (primary Gamma_8(6,3)) ==")
for ow in (60, 61, 63, 65, 67):
    segs = plan_width_segments(ow, 3, primary=get_kernel(8, 3))
    desc = " + ".join(f"{s.name}x{s.width}" for s in segs)
    print(f"  OW={ow}: {desc}")

# 4. Occupancy --------------------------------------------------------------
print("\n== occupancy on RTX3060Ti (why alpha <= 24, §4.1) ==")
for alpha, r in ((4, 3), (8, 3), (16, 9)):
    spec = variant_spec(alpha, alpha - r + 1, r)
    occ = occupancy_for(
        RTX3060TI,
        threads_per_block=spec.threads,
        smem_per_block=spec.smem_bytes,
        regs_per_thread=spec.regs_per_thread,
    )
    print(
        f"  alpha={alpha:<2} SMEM/block {spec.smem_bytes:>6} B -> "
        f"{occ.blocks_per_sm} blocks/SM, {occ.active_warps} warps "
        f"(limited by {occ.limiter})"
    )

# 5. Mini Figure-8 slice -----------------------------------------------------
print("\n== modeled Gflop/s, ofms 128x48x48x128, RTX3060Ti ==")
gemm = estimate_cudnn_gemm(
    ConvShape.from_ofm(128, 48, 48, 128, r=3), RTX3060TI, layout="nhwc"
).gflops
print(f"  cuDNN NHWC GEMM (r=3): {gemm:>8,.0f}")
for r in (2, 3, 4, 5, 6, 7, 8, 9):
    shape = ConvShape.from_ofm(128, 48, 48, 128, r=r)
    est = estimate_conv(shape, RTX3060TI)
    print(f"  r={r} {est.algorithm:<22} {est.gflops:>8,.0f}  ({est.bound}-bound)")
