"""Profiling a ResNet block with the observability layer (repro.obs).

The walkthrough the paper's §5/§6 measurements imply, on our substrate:
  1. enable tracing + metrics and run a ResNet BasicBlock forward pass,
  2. print the span tree (layer.conv2d -> conv2d -> segment -> transforms),
  3. cross-check the recorded flop counter against bench.flops,
  4. dump the metrics registry and write a Chrome trace (open in Perfetto
     or chrome://tracing, or run `python -m repro.obs.report <trace>`).

Run:  PYTHONPATH=src python examples/profiling.py
"""

import json
import tempfile

import numpy as np

from repro import ConvShape, obs
from repro.bench.flops import standard_flops
from repro.dlframe.autograd import Tensor
from repro.dlframe.models.resnet import BasicBlock
from repro.obs.report import load_events, render_report

rng = np.random.default_rng(7)

# 1. A CIFAR-scale residual block: 32 channels on a 16x17 feature map.  The
#    odd width (17) forces the §5.5 boundary split, so the trace shows both
#    Winograd segments and the GEMM tail.
block = BasicBlock(32, 32, engine="winograd", rng=rng)
block.eval()
x = rng.standard_normal((4, 16, 17, 32)).astype(np.float32)

with obs.capture() as tracer:
    y = block(Tensor(x))
print(f"block output: {y.data.shape}")

# 2. Where did the time go?  The span tree nests exactly like the pipeline:
#    layer.conv2d -> conv2d -> segment -> transform.* / accumulate.
print()
print("span tree (depth <= 2):")
print(tracer.summary(max_depth=2))

# 3. The flop counter is the paper's §6.1.1 numerator; it must agree with
#    the standalone accounting in repro.bench.flops for the same shapes.
conv_shape = ConvShape(batch=4, ih=16, iw=17, ic=32, oc=32, fh=3, fw=3, ph=1, pw=1)
recorded = obs.get_registry().counter("conv.flops").total()
expected = 2 * standard_flops(conv_shape)  # two 3x3 convolutions in the block
print()
print(f"recorded conv.flops: {recorded:,.0f}  (bench.flops says {expected:,})")
assert recorded == expected, (recorded, expected)

# 4. Metrics dump + Chrome trace + CLI report, end to end.
metrics = json.loads(obs.metrics_json())
print(f"metrics recorded: {', '.join(sorted(metrics))}")
assert "gather.bytes" in metrics and "winograd.tiles" in metrics

with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as fh:
    trace_path = obs.write_chrome_trace(fh.name)
events = load_events(trace_path)
assert any(e.get("ph") == "X" and e.get("name") == "conv2d" for e in events)
print(f"Chrome trace written to {trace_path} ({len(events)} events)")
print()
print(render_report(events, top=5))
