"""Multi-scale feature extraction — the paper's motivating use case.

The abstract argues that Im2col-Winograd's "more generalized acceleration
... can be beneficial for extracting features at different convolution
scales": unlike classic fused Winograd (3x3 only), the Gamma kernels cover
filter widths 2-9, so an Inception-style multi-scale block can run every
branch on the fast path.

This example builds a 4-branch multi-scale feature extractor (3x3, 5x5,
7x7, 9x9 filters over the same ifms), runs every branch through the fused
kernel, verifies each against the FP64 reference, and uses the GPU model to
show the speedup each branch would see over cuDNN's NHWC GEMM — including
the 3x3 branch where cuDNN's own fused Winograd is also available, and the
wider branches where it is not.

Run:  python examples/multiscale_features.py
"""

import numpy as np

from repro import ConvShape, conv2d_im2col_winograd
from repro.baselines import conv2d_direct
from repro.core import plan_convolution
from repro.gpusim import RTX3060TI, estimate_conv, estimate_cudnn_gemm

rng = np.random.default_rng(7)

BATCH, SIZE, IC = 8, 36, 48
BRANCH_OC = 32
SCALES = (3, 5, 7, 9)

x = rng.standard_normal((BATCH, SIZE, SIZE, IC)).astype(np.float32)

print(f"input: {x.shape}, branches: {[f'{r}x{r}' for r in SCALES]}\n")
features = []
for r in SCALES:
    w = (rng.standard_normal((BRANCH_OC, r, r, IC)) / (r * np.sqrt(IC))).astype(np.float32)
    y = conv2d_im2col_winograd(x, w)  # same-size output at floor(r/2) padding
    truth = conv2d_direct(x, w, ph=r // 2, pw=r // 2, dtype=np.float64)
    rel = np.abs(y - truth).max() / np.abs(truth).max()
    features.append(y)

    shape = ConvShape.from_ofm(BATCH, SIZE, SIZE, BRANCH_OC, r=r, ic=IC)
    plan = plan_convolution(shape)
    ours = estimate_conv(shape, RTX3060TI)
    gemm = estimate_cudnn_gemm(shape, RTX3060TI, layout="nhwc")
    print(
        f"branch {r}x{r}: kernel {plan.primary.name:<22} rel.err {rel:.1e}  "
        f"modeled speedup vs NHWC GEMM {ours.gflops / gemm.gflops:.2f}x"
    )

# Concatenate along channels: the multi-scale feature map.
fmap = np.concatenate(features, axis=3)
print(f"\nmulti-scale feature map: {fmap.shape} "
      f"({len(SCALES)} scales x {BRANCH_OC} channels)")
assert fmap.shape == (BATCH, SIZE, SIZE, BRANCH_OC * len(SCALES))
