"""Quickstart: run a fused Im2col-Winograd convolution and check it.

Covers the 60-second tour of the library:
  1. convolve an NHWC batch with Gamma_alpha(n, r),
  2. verify against the FP64 direct reference,
  3. look at the plan the library chose (kernel + boundary segmentation),
  4. ask the GPU model what this convolution would do on an RTX 3060 Ti.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ConvShape, conv2d_im2col_winograd, plan_convolution
from repro.baselines import conv2d_direct
from repro.gpusim import RTX3060TI, estimate_conv, estimate_cudnn_gemm

rng = np.random.default_rng(0)

# 1. A realistic mid-network convolution: batch 8, 48x49 feature map, 64->96
#    channels, 5x5 filter with "same" padding.  The odd width (49) is on
#    purpose: it exercises the paper's boundary treatment.
x = rng.standard_normal((8, 48, 49, 64)).astype(np.float32)
w = rng.standard_normal((96, 5, 5, 64)).astype(np.float32)

y = conv2d_im2col_winograd(x, w)  # padding defaults to floor(5/2) = 2
print(f"ofms: {y.shape} ({y.dtype})")

# 2. Check against the FP64 direct convolution (the paper's ground truth).
truth = conv2d_direct(x, w, ph=2, pw=2, dtype=np.float64)
rel = np.abs(y - truth).max() / np.abs(truth).max()
print(f"max relative error vs FP64 direct: {rel:.2e}")
assert rel < 1e-4

# 3. What did the planner decide?
shape = ConvShape(batch=8, ih=48, iw=49, ic=64, oc=96, fh=5, fw=5, ph=2, pw=2)
plan = plan_convolution(shape)
print(f"plan: {plan.algorithm}, primary kernel {plan.primary.name}")
for seg in plan.segments:
    print(f"  columns [{seg.start}, {seg.start + seg.width}): {seg.name}")
print(f"Winograd covers {plan.winograd_fraction:.1%} of the output width")

# 4. Modeled GPU throughput (the substrate behind Figures 8/9).
ours = estimate_conv(shape, RTX3060TI)
gemm = estimate_cudnn_gemm(shape, RTX3060TI, layout="nhwc")
print(
    f"RTX3060Ti model: {ours.algorithm} {ours.gflops:,.0f} Gflop/s vs "
    f"cuDNN NHWC GEMM {gemm.gflops:,.0f} Gflop/s "
    f"(speedup {ours.gflops / gemm.gflops:.2f}x)"
)
