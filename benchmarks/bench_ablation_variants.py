"""Ablation A3 (§5.4/§5.6): ruse and c64 variants vs base kernels.

Reports, per kernel: arithmetic intensity (the paper's op/byte numbers),
per-tile load cost, occupancy, and modeled Gflop/s across a small/large
channel sweep — the structure claimed in §6.1.2: "Both Gamma^c64 and
Gamma^ruse show enhanced performance over Gamma; the enhancement of c64 is
positively correlated to r, while ruse shows greater enhancement as the
(r-1)/alpha overlap increases", with extra robustness at large channels.
"""

from __future__ import annotations

import pytest

from repro.bench import banner, table
from repro.core.kernels import get_kernel
from repro.core.variants import arithmetic_intensity, input_items_per_tile, ruse_profitable
from repro.gpusim import RTX3060TI, estimate_conv, grid_for
from repro.nhwc import ConvShape

CASES = [
    (8, 5, ("base", "ruse")),
    (8, 6, ("base", "ruse")),
    (8, 7, ("base", "ruse")),
    (16, 8, ("base", "ruse", "c64")),
    (16, 9, ("base", "ruse", "c64")),
    (16, 7, ("base", "c64")),
]


def render() -> tuple[str, dict]:
    rows = []
    perf: dict[tuple[int, int, str], float] = {}
    for alpha, r, variants in CASES:
        n = alpha - r + 1
        # shape with OW divisible by n and channels multiple of 64
        ow = n * max(4, 32 // n)
        shape = ConvShape.from_ofm(64, ow, ow, 256, r=r)
        for variant in variants:
            k = get_kernel(alpha, r, variant)
            spec = k.spec
            grid = grid_for(shape, spec, RTX3060TI, ow_segment=ow - ow % spec.coverage)
            g = estimate_conv(shape, RTX3060TI, alpha=alpha, variant=variant).gflops
            perf[(alpha, r, variant)] = g
            rows.append(
                [
                    k.name,
                    f"{arithmetic_intensity(alpha, n, r, variant):.2f}",
                    f"{input_items_per_tile(alpha, r, variant):.1f}",
                    spec.threads,
                    grid.occupancy.active_warps,
                    f"{g:,.0f}",
                ]
            )
    head = banner(
        "Ablation A3 — ruse (§5.4) and c64 (§5.6) variants",
        "RTX3060Ti model, 64 x (n-aligned) x 256 ofms",
    )
    body = table(
        ["kernel", "op/byte", "items/tile", "threads", "warps/SM", "modeled Gflop/s"],
        rows,
    )
    return head + "\n" + body, perf


def test_ablation_variants(benchmark, artifact):
    text, perf = benchmark(render)
    artifact("ablation_a3_variants", text)
    # c64 strictly enhances base for alpha=16 (§5.6).
    for r in (7, 8, 9):
        assert perf[(16, r, "c64")] > perf[(16, r, "base")]
    # ruse never falls below base where the paper ships it (§5.4 threshold).
    for alpha, r, variants in CASES:
        if "ruse" in variants:
            assert ruse_profitable(alpha, r)
            assert perf[(alpha, r, "ruse")] >= 0.99 * perf[(alpha, r, "base")]


def test_c64_enhancement_grows_with_r():
    """§6.1.2: 'The enhancement of Gamma^c64 is positively correlated to r'."""
    gains = []
    for r in (7, 8, 9):
        n = 17 - r
        ow = n * max(4, 32 // n)
        shape = ConvShape.from_ofm(64, ow, ow, 256, r=r)
        base = estimate_conv(shape, RTX3060TI, alpha=16, variant="base").gflops
        c64 = estimate_conv(shape, RTX3060TI, alpha=16, variant="c64").gflops
        gains.append(c64 / base)
    assert gains[2] > gains[0]


if __name__ == "__main__":
    print(render()[0])
