"""Table 2: speedup of Im2col-Winograd over cuDNN.

For each of the paper's nine kernels on both devices, the min-max speedup
band over (a) the fastest cuDNN benchmark algorithm per shape and (b) the
NHWC Implicit_Precomp_GEMM, computed over the corresponding Figure 8/9
shape list with the base variant including filter transposition — the
measurement Table 2 summarises.
"""

from __future__ import annotations

import pytest

from repro.bench import FIG8_PANELS, FIG9_PANELS, banner, panel_shapes, speedup_band, table
from repro.gpusim import (
    RTX3060TI,
    RTX4090,
    estimate_conv,
    estimate_cudnn_fused_winograd,
    estimate_cudnn_gemm,
)

#: Paper Table 2 bands, for the side-by-side footer.
PAPER_BANDS = {
    ("Gamma_8(4,5)", "RTX3060Ti"): ("0.989-1.516x", ""),
    ("Gamma_8(4,5)", "RTX4090"): ("0.895-1.442x", "0.895-1.442x"),
    ("Gamma_8(5,4)", "RTX3060Ti"): ("0.929-1.384x", "0.893-1.386x"),
    ("Gamma_8(5,4)", "RTX4090"): ("0.910-1.386x", "0.910-1.386x"),
    ("Gamma_8(3,6)", "RTX3060Ti"): ("0.991-1.354x", ""),
    ("Gamma_8(3,6)", "RTX4090"): ("0.918-1.298x", ""),
    ("Gamma_8(6,3)", "RTX3060Ti"): ("0.960-1.221x", "0.960-1.358x"),
    ("Gamma_8(6,3)", "RTX4090"): ("0.938-1.477x", "0.947-2.074x"),
    ("Gamma_8(2,7)", "RTX3060Ti"): ("0.852-1.076x", "0.887-1.110x"),
    ("Gamma_8(2,7)", "RTX4090"): ("0.861-0.968x", "0.861-1.087x"),
    ("Gamma_8(7,2)", "RTX3060Ti"): ("0.841-1.243x", ""),
    ("Gamma_8(7,2)", "RTX4090"): ("0.788-1.034x", "0.788-1.428x"),
    ("Gamma_16(10,7)", "RTX3060Ti"): ("1.148-1.821x", "1.148-1.842x"),
    ("Gamma_16(10,7)", "RTX4090"): ("1.118-1.725x", "1.118-1.895x"),
    ("Gamma_16(9,8)", "RTX3060Ti"): ("1.445-2.050x", "1.445-2.233x"),
    ("Gamma_16(9,8)", "RTX4090"): ("1.293-1.671x", "1.293-1.708x"),
    ("Gamma_16(8,9)", "RTX3060Ti"): ("1.321-1.976x", ""),
    ("Gamma_16(8,9)", "RTX4090"): ("1.264-1.664x", ""),
}


def kernel_bands(name: str, device, panels) -> tuple[list[float], list[float]]:
    """Per-shape speedups vs (fastest cuDNN, NHWC GEMM)."""
    alpha, r, _ = panels[name]
    vs_fastest, vs_nhwc = [], []
    for shape, a in panel_shapes(panels[name]):
        ours = estimate_conv(shape, device, alpha=a, variant="base").gflops
        cands = {
            "nhwc": estimate_cudnn_gemm(shape, device, layout="nhwc").gflops,
            "nchw": estimate_cudnn_gemm(shape, device, layout="nchw").gflops,
        }
        if r == 3:
            cands["fused"] = estimate_cudnn_fused_winograd(shape, device).gflops
        vs_fastest.append(ours / max(cands.values()))
        vs_nhwc.append(ours / cands["nhwc"])
    return vs_fastest, vs_nhwc


def render_table2() -> str:
    rows = []
    for device, panels in ((RTX3060TI, FIG8_PANELS), (RTX4090, FIG9_PANELS)):
        for name in panels:
            fastest, nhwc = kernel_bands(name, device, panels)
            paper_f, paper_n = PAPER_BANDS.get((name, device.name), ("", ""))
            rows.append(
                [
                    name,
                    device.name,
                    speedup_band(fastest),
                    paper_f,
                    speedup_band(nhwc),
                    paper_n,
                ]
            )
    head = banner(
        "Table 2 — speedup over cuDNN (modeled)",
        "ours = base Gamma incl. filter transposition; bands over the Fig 8/9 shapes",
    )
    body = table(
        ["Algorithm", "Device", "vs fastest", "(paper)", "vs NHWC GEMM", "(paper)"], rows
    )
    return head + "\n" + body


def test_table2_speedup(benchmark, artifact):
    text = benchmark(render_table2)
    artifact("table2_speedup", text)


def test_table2_overall_band_matches_paper_envelope():
    """Abstract claim: 0.788x to 2.05x over the fastest benchmark algorithm.
    The model's overall envelope must land in the same regime."""
    lo, hi = 10.0, 0.0
    for device, panels in ((RTX3060TI, FIG8_PANELS), (RTX4090, FIG9_PANELS)):
        for name in panels:
            fastest, _ = kernel_bands(name, device, panels)
            lo = min(lo, min(fastest))
            hi = max(hi, max(fastest))
    assert 0.6 < lo < 1.05, lo
    assert 1.5 < hi < 2.6, hi


if __name__ == "__main__":
    print(render_table2())
