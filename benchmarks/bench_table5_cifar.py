"""Table 5: CNN training on (synthetic) Cifar10 — Alpha vs PyTorch stand-in.

The paper's rows: ResNet18/34, VGG16/19, VGG16x5, each under Adam and SGDM,
reporting s/epoch, acceleration, train\\test accuracy, GPU memory, weight
file.  Here "Alpha" = dlframe with the Im2col-Winograd engine, "PyTorch" =
the identical dlframe with the GEMM engine — isolating the convolution
algorithm exactly as the paper's comparison intends (same models, same
data, same initialisation, same optimiser).

Scale: synthetic 16x16 images, width_mult 0.25, a few epochs (the paper
trains 25-40 epochs on a GPU).  ``REPRO_BENCH_SCALE=full`` uses 32x32 and
width 1.0.  The *shape* expected to reproduce: acceleration > 1 with the
largest gains on VGG16x5/VGG16x7 (§6.3.2), memory smaller for Alpha,
accuracies equal within noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_scale
from repro.bench import banner, modeled_training_acceleration, table
from repro.dlframe import Adam, SGDM, Trainer, synthetic_cifar10
from repro.dlframe.models import resnet18, resnet34, vgg16, vgg16x5, vgg19
from repro.gpusim import RTX3060TI

ROWS = [
    ("ResNet18", resnet18, "adam"),
    ("ResNet18", resnet18, "sgdm"),
    ("ResNet34", resnet34, "adam"),
    ("VGG16", vgg16, "adam"),
    ("VGG19", vgg19, "adam"),
    ("VGG16x5", vgg16x5, "adam"),
    ("VGG16x5", vgg16x5, "sgdm"),
]


def config():
    if bench_scale() == "full":
        return dict(image=32, width=1.0, train=4096, test=1024, epochs=4, batch=512)
    return dict(image=16, width=0.25, train=384, test=96, epochs=2, batch=64)


def train_one(make_model, optname: str, engine: str, cfg) -> "TrainRecord":
    kwargs = dict(classes=10, width_mult=cfg["width"], engine=engine, seed=5)
    if make_model in (vgg16, vgg19, vgg16x5):
        kwargs["image"] = cfg["image"]
    model = make_model(**kwargs)
    opt = (Adam if optname == "adam" else SGDM)(model.parameters(), lr=1e-3)
    train, test = synthetic_cifar10(
        train=cfg["train"], test=cfg["test"], image=cfg["image"], seed=9
    )
    return Trainer(model, opt).fit(train, test, epochs=cfg["epochs"], batch_size=cfg["batch"])


def modeled_accel(make_model) -> float:
    """GPU-modeled conv acceleration at the paper's Cifar10 geometry (32x32,
    batch 512, full width) — the Table 5 'Acceleration' column analogue."""
    kwargs = dict(classes=10, width_mult=1.0, seed=5)
    if make_model in (vgg16, vgg19, vgg16x5):
        kwargs["image"] = 32
    mw = make_model(engine="winograd", **kwargs)
    mg = make_model(engine="gemm", **kwargs)
    return modeled_training_acceleration(mw, mg, image=32, batch=512, device=RTX3060TI)


def render_table5() -> tuple[str, list[dict]]:
    cfg = config()
    rows, raw = [], []
    for name, make_model, optname in ROWS:
        alpha = train_one(make_model, optname, "winograd", cfg)
        torch = train_one(make_model, optname, "gemm", cfg)
        accel = modeled_accel(make_model)
        raw.append(
            dict(name=name, opt=optname, accel=accel, alpha=alpha, torch=torch)
        )
        rows.append(
            [
                name,
                optname.upper(),
                f"{alpha.seconds_per_epoch:.2f}s | {torch.seconds_per_epoch:.2f}s",
                f"{accel:.3f}x",
                f"{alpha.train_accuracy:.1%}\\{alpha.test_accuracy:.1%} | "
                f"{torch.train_accuracy:.1%}\\{torch.test_accuracy:.1%}",
                f"{alpha.memory_bytes / 1e6:.0f}MB | {torch.memory_bytes / 1e6:.0f}MB",
                f"{alpha.weight_bytes / 1e6:.1f}MB",
            ]
        )
    head = banner(
        "Table 5 — training on synthetic Cifar10 (Alpha=winograd | PyTorch=gemm)",
        f"scale={bench_scale()}: image={cfg['image']}, width x{cfg['width']}, "
        f"{cfg['epochs']} epochs, batch {cfg['batch']}; Accel column is the "
        "GPU-model conv-time ratio at paper geometry (NumPy wall-clock shown raw)",
    )
    body = table(
        ["Network", "Optim", "s/epoch (A | P)", "Accel(model)", "Train\\Test acc (A | P)",
         "Memory (A | P)", "Weights"],
        rows,
    )
    return head + "\n" + body, raw


def test_table5_cifar(benchmark, artifact):
    text, raw = benchmark.pedantic(render_table5, iterations=1, rounds=1)
    artifact("table5_cifar", text)
    for row in raw:
        a, p = row["alpha"], row["torch"]
        # Memory: the fused engine never needs the im2col workspace.
        assert a.memory_bytes < p.memory_bytes, row["name"]
        # Convergence parity: final recorded losses within a loose band.
        assert abs(a.losses[-1] - p.losses[-1]) < 0.35 + 0.25 * p.losses[-1], row["name"]
    # §6.3.2's structure on the modeled acceleration: everything >= ~1x and
    # VGG16x5 (higher multiplication reduction) gains more than VGG16.
    assert all(r["accel"] > 0.95 for r in raw)
    by_name = {r["name"]: r["accel"] for r in raw}
    assert by_name["VGG16x5"] > by_name["VGG16"]


if __name__ == "__main__":
    print(render_table5()[0])
