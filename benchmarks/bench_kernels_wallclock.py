"""Wall-clock microbenchmarks of the actual NumPy kernels (K1).

Not a paper artifact — a health check that the *implementations* (not the
GPU model) are exercised under pytest-benchmark: fused Im2col-Winograd vs
im2col-GEMM vs direct vs FFT vs fused 2D Winograd on one moderate shape,
plus the fused kernel across filter widths.  On CPU/NumPy the BLAS-backed
GEMM usually wins; the interesting observable is FFT's crossover as r grows
and the fused kernel's flat scaling in r (its work is ~independent of r at
fixed alpha).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import conv2d_direct, conv2d_fft, conv2d_gemm, conv2d_winograd2d
from repro.core import conv2d_im2col_winograd

RNG = np.random.default_rng(1234)
X = RNG.standard_normal((8, 32, 32, 32)).astype(np.float32)
W3 = RNG.standard_normal((32, 3, 3, 32)).astype(np.float32)


@pytest.mark.parametrize(
    "name,fn",
    [
        ("im2col-winograd", lambda: conv2d_im2col_winograd(X, W3)),
        ("gemm", lambda: conv2d_gemm(X, W3, ph=1, pw=1)),
        ("direct", lambda: conv2d_direct(X, W3, ph=1, pw=1)),
        ("fft", lambda: conv2d_fft(X, W3, ph=1, pw=1)),
        ("winograd2d-F(2x2,3x3)", lambda: conv2d_winograd2d(X, W3, m=2)),
    ],
)
def test_conv_3x3_wallclock(benchmark, name, fn):
    y = benchmark(fn)
    assert y.shape == (8, 32, 32, 32)


@pytest.mark.parametrize("r", [2, 3, 5, 7, 9])
def test_fused_width_sweep(benchmark, r):
    w = RNG.standard_normal((32, r, r, 32)).astype(np.float32)
    y = benchmark(lambda: conv2d_im2col_winograd(X, w))
    assert y.shape[3] == 32


def test_fused_matches_direct_on_bench_shape():
    y = conv2d_im2col_winograd(X, W3)
    ref = conv2d_direct(X, W3, ph=1, pw=1, dtype=np.float64)
    rel = np.abs(y - ref).max() / np.abs(ref).max()
    assert rel < 1e-4
