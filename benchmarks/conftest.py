"""Shared helpers for the benchmark suite.

Every ``bench_*.py`` regenerates one paper artifact (table or figure).  The
regenerated artifact text is printed and also written to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference stable files;
pytest-benchmark's own timing table covers the wall-clock side.

Scale control: the paper's Experiment-2/3 workloads are sized for a GPU; a
NumPy reproduction runs them at reduced batch / model width.  Set
``REPRO_BENCH_SCALE=full`` for paper-sized batches (slow) or leave the
default ``small``.

Tracing: any benchmark run can opt into the observability layer with
``--trace-json out.json`` (``--trace`` itself is taken by pytest's debugger);
the whole session runs with ``repro.obs`` enabled and a Chrome-trace JSON —
profile it with ``python -m repro.obs.report out.json`` or open it in
Perfetto — is written next to the usual ASCII artifacts.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--trace-json",
        action="store",
        default=None,
        metavar="PATH",
        help="enable repro.obs tracing for the whole benchmark session and "
        "write a Chrome-trace JSON (Perfetto-loadable) to PATH",
    )


def pytest_configure(config: pytest.Config) -> None:
    path = config.getoption("--trace-json", default=None)
    if path:
        parent = pathlib.Path(path).resolve().parent
        if not parent.is_dir():
            raise pytest.UsageError(f"--trace-json: directory {parent} does not exist")


@pytest.fixture(scope="session", autouse=True)
def _obs_trace(request: pytest.FixtureRequest):
    """Session-wide tracing hook behind ``--trace-json``."""
    path = request.config.getoption("--trace-json")
    if not path:
        yield
        return
    from repro import obs

    obs.reset()
    obs.get_registry().reset()
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


def pytest_terminal_summary(
    terminalreporter, exitstatus: int, config: pytest.Config
) -> None:
    """Write the Chrome trace after the run (visible despite output capture)."""
    path = config.getoption("--trace-json", default=None)
    if not path:
        return
    from repro import obs

    written = obs.write_chrome_trace(path)
    terminalreporter.write_line(
        f"[repro.obs] Chrome trace written to {written} "
        f"({obs.get_tracer().span_count()} spans); "
        f"profile it with: python -m repro.obs.report {written}"
    )


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("small", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'small' or 'full', got {scale!r}")
    return scale


def save_artifact(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def artifact():
    return save_artifact
