"""Shared helpers for the benchmark suite.

Every ``bench_*.py`` regenerates one paper artifact (table or figure).  The
regenerated artifact text is printed and also written to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference stable files;
pytest-benchmark's own timing table covers the wall-clock side.

Scale control: the paper's Experiment-2/3 workloads are sized for a GPU; a
NumPy reproduction runs them at reduced batch / model width.  Set
``REPRO_BENCH_SCALE=full`` for paper-sized batches (slow) or leave the
default ``small``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("small", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'small' or 'full', got {scale!r}")
    return scale


def save_artifact(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def artifact():
    return save_artifact
