"""Figure 9: Gamma kernel throughput vs cuDNN on the RTX 4090 model.

Same nine panels as Figure 8, with the paper's larger RTX 4090 shape lists.
Reuses the Figure 8 renderer against the Ada device spec.
"""

from __future__ import annotations

import pytest

from bench_fig8_rtx3060ti import render_panel
from repro.bench import FIG9_PANELS
from repro.gpusim import RTX4090


@pytest.mark.parametrize("panel", sorted(FIG9_PANELS))
def test_fig9_panel(benchmark, artifact, panel):
    text = benchmark(render_panel, panel, RTX4090, FIG9_PANELS, "Figure 9")
    artifact(f"fig9_{panel.replace('(', '_').replace(',', '_').replace(')', '')}", text)


def test_fig9_baseline_store():
    """Same round-trip as Figure 8's, for the RTX 4090 suite."""
    import pathlib

    from repro.bench.baseline import (
        compare_metrics,
        load_baseline,
        suite_metrics,
        write_baseline,
    )

    metrics = suite_metrics("fig9")
    assert len(metrics) == 2 * sum(len(p[2]) for p in FIG9_PANELS.values())
    path = write_baseline(
        pathlib.Path(__file__).parent / "out" / "BENCH_fig9.json",
        metrics,
        tag="fig9",
        suite="fig9",
    )
    rows, regressions = compare_metrics(load_baseline(path)["metrics"], metrics)
    assert regressions == 0 and len(rows) == len(metrics)


if __name__ == "__main__":
    for panel in FIG9_PANELS:
        print(render_panel(panel, RTX4090, FIG9_PANELS, "Figure 9"))
        print()
