"""Table 4: CNN training on (synthetic) ILSVRC2012 — Alpha vs PyTorch stand-in.

The paper's rows: ResNet18/34, VGG16/19 (+Adam), VGG16x5 (+Adam), VGG16x7
(+SGDM), at 128x128 inputs with 1000 classes, batch 256, on an RTX 4090.
Here the same code path runs at reduced geometry (see ``config``); the
modeled-acceleration column uses the paper geometry on the RTX 4090 model.
Expected shape: all accelerations > 1, VGG16x5/VGG16x7 gaining the most
(their Gamma_8(4,5)/Gamma_16(10,7) kernels cut the most multiplications),
Alpha memory below PyTorch's, indistinguishable convergence.
"""

from __future__ import annotations

import pytest

from conftest import bench_scale
from repro.bench import banner, modeled_training_acceleration, table
from repro.dlframe import Adam, SGDM, Trainer, synthetic_ilsvrc
from repro.dlframe.models import resnet18, resnet34, vgg16, vgg16x5, vgg16x7, vgg19
from repro.gpusim import RTX4090

ROWS = [
    ("ResNet18", resnet18, "adam"),
    ("ResNet34", resnet34, "adam"),
    ("VGG16", vgg16, "adam"),
    ("VGG19", vgg19, "adam"),
    ("VGG16x5", vgg16x5, "adam"),
    ("VGG16x7", vgg16x7, "sgdm"),
]

_VGGS = (vgg16, vgg19, vgg16x5, vgg16x7)


def config():
    if bench_scale() == "full":
        return dict(image=128, classes=1000, width=1.0, train=2048, test=512, epochs=2, batch=256)
    return dict(image=32, classes=20, width=0.125, train=256, test=64, epochs=2, batch=64)


def train_one(make_model, optname, engine, cfg):
    kwargs = dict(classes=cfg["classes"], width_mult=cfg["width"], engine=engine, seed=2)
    if make_model in _VGGS:
        kwargs["image"] = cfg["image"]
    model = make_model(**kwargs)
    opt = (Adam if optname == "adam" else SGDM)(model.parameters(), lr=1e-3)
    train, test = synthetic_ilsvrc(
        train=cfg["train"], test=cfg["test"], image=cfg["image"], classes=cfg["classes"], seed=4
    )
    return Trainer(model, opt).fit(train, test, epochs=cfg["epochs"], batch_size=cfg["batch"])


def modeled_accel(make_model) -> float:
    """Conv-time acceleration at the paper's ILSVRC geometry (128x128,
    batch 256, RTX 4090)."""
    kwargs = dict(classes=1000, width_mult=1.0, seed=2)
    if make_model in _VGGS:
        kwargs["image"] = 128
    mw = make_model(engine="winograd", **kwargs)
    mg = make_model(engine="gemm", **kwargs)
    return modeled_training_acceleration(mw, mg, image=128, batch=256, device=RTX4090)


def render_table4() -> tuple[str, list[dict]]:
    cfg = config()
    rows, raw = [], []
    for name, make_model, optname in ROWS:
        alpha = train_one(make_model, optname, "winograd", cfg)
        torch = train_one(make_model, optname, "gemm", cfg)
        accel = modeled_accel(make_model)
        raw.append(dict(name=name, accel=accel, alpha=alpha, torch=torch))
        rows.append(
            [
                name,
                optname.upper(),
                f"{alpha.seconds_per_epoch:.2f}s | {torch.seconds_per_epoch:.2f}s",
                f"{accel:.3f}x",
                f"{alpha.train_accuracy:.1%} | {torch.train_accuracy:.1%}",
                f"{alpha.memory_bytes / 1e6:.0f}MB | {torch.memory_bytes / 1e6:.0f}MB",
                f"{alpha.weight_bytes / 1e6:.1f}MB",
            ]
        )
    head = banner(
        "Table 4 — training on synthetic ILSVRC2012 (Alpha=winograd | PyTorch=gemm)",
        f"scale={bench_scale()}: image={cfg['image']}, {cfg['classes']} classes, "
        f"width x{cfg['width']}, {cfg['epochs']} epochs, batch {cfg['batch']}; "
        "Accel = modeled conv-time ratio at paper geometry on RTX4090",
    )
    body = table(
        ["Network", "Optim", "s/epoch (A | P)", "Accel(model)", "Train acc (A | P)",
         "Memory (A | P)", "Weights"],
        rows,
    )
    return head + "\n" + body, raw


def test_table4_ilsvrc(benchmark, artifact):
    text, raw = benchmark.pedantic(render_table4, iterations=1, rounds=1)
    artifact("table4_ilsvrc", text)
    for row in raw:
        assert row["alpha"].memory_bytes < row["torch"].memory_bytes, row["name"]
        assert row["accel"] > 0.95, row["name"]
    by_name = {r["name"]: r["accel"] for r in raw}
    # §6.3.2: higher acceleration on VGG16x5 / VGG16x7 than on VGG16/VGG19.
    assert by_name["VGG16x5"] > by_name["VGG16"]
    assert by_name["VGG16x7"] > by_name["VGG19"]


if __name__ == "__main__":
    print(render_table4()[0])
