"""Workspace comparison (§3, §6.1.1): why the baseline set is what it is.

The paper benchmarks only Implicit_Precomp_GEMM and Fused_Winograd because
they are "as memory-efficient as Im2col-Winograd", while Non_Fused_Winograd
and FFT "require a much larger workspace".  This bench prints the
global-memory workspace of each algorithm across a column of the Figure-8
shapes, turning that justification into numbers.
"""

from __future__ import annotations

import pytest

from repro.bench import FIG8_PANELS, banner, fmt_ofm, panel_shapes, table
from repro.core.workspace import workspace_report


def render() -> tuple[str, list[dict]]:
    rows, reports = [], []
    for shape, _ in panel_shapes(FIG8_PANELS["Gamma_8(6,3)"]):
        r = workspace_report(shape)
        reports.append(r)
        rows.append(
            [
                fmt_ofm(shape),
                f"{r['fused-im2col-winograd']}",
                f"{r['implicit-gemm'] / 1e3:,.0f} KB",
                f"{r['explicit-gemm'] / 1e6:,.0f} MB",
                f"{r['nonfused-winograd2d'] / 1e6:,.0f} MB",
                f"{r['fft'] / 1e6:,.0f} MB",
            ]
        )
    head = banner(
        "Workspace per algorithm (§3/§6.1.1) — Gamma_8(6,3) shape column",
        "fused & implicit-GEMM are memory-comparable; the rest are not",
    )
    body = table(
        ["ofm", "fused (B)", "implicit GEMM", "explicit GEMM", "non-fused Winograd", "FFT"],
        rows,
    )
    return head + "\n" + body, reports


def test_workspace_table(benchmark, artifact):
    text, reports = benchmark(render)
    artifact("workspace_comparison", text)
    for r in reports:
        assert r["fused-im2col-winograd"] == 0
        assert r["nonfused-winograd2d"] > 1000 * max(1, r["implicit-gemm"])
        assert r["fft"] > 100 * max(1, r["implicit-gemm"])


if __name__ == "__main__":
    print(render()[0])
