"""Figures 11 & 12: training loss curves, Alpha vs PyTorch stand-in.

The paper's claim is visual: the two frameworks' loss curves coincide on
both datasets, i.e. Im2col-Winograd "does not visibly affect the
convergence" (§6.3.2).  We train the same model twice — identical data,
initialisation and optimiser, only the convolution engine differs — record
the loss every 10 steps (Fig 12 protocol) and, for the ILSVRC-like run,
smooth with the non-overlapping window of 10 (Fig 11 protocol).  The bench
prints both curves as aligned sparklines and asserts pointwise closeness.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_scale
from repro.bench import banner, series_line, table
from repro.dlframe import Adam, SGDM, Trainer, synthetic_cifar10, synthetic_ilsvrc
from repro.dlframe.models import resnet18, vgg16, vgg16x5
from repro.dlframe.trainer import smooth_losses

#: (figure, sub-config label, model factory, optimizer, dataset)
CONFIGS = [
    ("fig12", "ResNet18+Adam (Cifar10)", resnet18, Adam, "cifar"),
    ("fig12", "VGG16+SGDM (Cifar10)", vgg16, SGDM, "cifar"),
    ("fig12", "VGG16x5+Adam (Cifar10)", vgg16x5, Adam, "cifar"),
    ("fig11", "ResNet18+Adam (ILSVRC)", resnet18, Adam, "ilsvrc"),
    ("fig11", "VGG16+Adam (ILSVRC)", vgg16, Adam, "ilsvrc"),
]


def run_pair(label: str, make_model, make_opt, dataset: str):
    full = bench_scale() == "full"
    if dataset == "cifar":
        image = 32 if full else 12
        train, _ = synthetic_cifar10(train=2048 if full else 240, test=8, image=image, noise=0.25)
        classes = 10
    else:
        image = 64 if full else 16
        classes = 100 if full else 8
        train, _ = synthetic_ilsvrc(
            train=1024 if full else 240, test=8, image=image, classes=classes, noise=0.25
        )
    width = 0.5 if full else 0.125
    epochs = 6 if full else (8 if dataset == "ilsvrc" else 4)
    batch = 48 if dataset == "cifar" else 24
    curves = {}
    for engine in ("winograd", "gemm"):
        kwargs = dict(classes=classes, width_mult=width, engine=engine, seed=13)
        if make_model is not resnet18:
            kwargs["image"] = image
        model = make_model(**kwargs)
        trainer = Trainer(model, make_opt(model.parameters(), lr=1e-3), record_every=1)
        rec = trainer.fit(train, epochs=epochs, batch_size=batch, seed=21)
        curves[engine] = rec.losses
    return curves


def render(label: str, curves) -> str:
    a = curves["winograd"]
    p = curves["gemm"]
    if "ILSVRC" in label:  # Fig 11 smoothing protocol
        a = smooth_losses(a, 10)
        p = smooth_losses(p, 10)
    gap = float(np.max(np.abs(np.array(a) - np.array(p))))
    lines = [
        banner(f"Loss curves — {label}", f"max |Alpha - PyTorch| = {gap:.4f}"),
        series_line("Alpha", a, width=10),
        series_line("PyTorch", p, width=10),
    ]
    ticks = sorted({0, len(a) // 2, len(a) - 1})
    lines.append(
        table(
            ["step idx", "Alpha loss", "PyTorch loss"],
            [[t, f"{a[t]:.4f}", f"{p[t]:.4f}"] for t in ticks],
        )
    )
    return "\n".join(lines), a, p


@pytest.mark.parametrize("fig,label,make_model,make_opt,dataset", CONFIGS)
def test_loss_curves(benchmark, artifact, fig, label, make_model, make_opt, dataset):
    curves = benchmark.pedantic(
        run_pair, args=(label, make_model, make_opt, dataset), iterations=1, rounds=1
    )
    text, a, p = render(label, curves)
    slug = label.split(" ")[0].lower().replace("+", "_")
    artifact(f"{fig}_{slug}_{dataset}", text)
    a, p = np.array(a), np.array(p)
    # The convergence-parity claim: curves coincide within FP32 divergence
    # noise and both actually descend.
    assert a[-1] < a[0] and p[-1] < p[0]
    scale = max(1e-3, float(np.abs(p).mean()))
    assert float(np.abs(a - p).max()) < 0.25 * max(1.0, scale) + 0.15


if __name__ == "__main__":
    for fig, label, mk, opt, ds in CONFIGS:
        print(render(label, run_pair(label, mk, opt, ds))[0])
        print()
