"""Ablation A2 (§5.3): even/odd-paired transform simplification.

Two views:

* arithmetic: multiplication counts of ``D^T x`` / ``G w`` / ``A^T m``
  evaluated densely vs with the pairing (the paper: "reducing the number of
  necessary multiplications by nearly half");
* modeled end-to-end effect: the Figure-8 perf model with paired vs dense
  transform op-factors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import banner, table
from repro.core.simplify import pairwise_transform, transform_mul_counts
from repro.core.transforms import winograd_matrices
from repro.gpusim import RTX3060TI, estimate_conv
from repro.nhwc import ConvShape

SCHEMES = [(6, 3), (4, 5), (2, 7), (10, 7), (9, 8), (8, 9)]


def render_mul_counts() -> tuple[str, list[float]]:
    rows, savings = [], []
    for n, r in SCHEMES:
        m = winograd_matrices(n, r, dtype="float64")
        c_dt = transform_mul_counts(m.DT)
        c_g = transform_mul_counts(m.G)
        c_at = transform_mul_counts(np.ascontiguousarray(m.AT.T))
        total_dense = c_dt["dense"] + c_g["dense"] + c_at["dense"]
        total_paired = c_dt["paired"] + c_g["paired"] + c_at["paired"]
        savings.append(1 - total_paired / total_dense)
        rows.append(
            [
                f"F({n},{r})",
                c_dt["dense"],
                c_dt["paired"],
                c_g["dense"],
                c_g["paired"],
                f"{1 - total_paired / total_dense:.1%}",
            ]
        )
    head = banner(
        "Ablation A2 — §5.3 simplified transforms",
        "multiplications per transform, dense mat-vec vs even/odd pairing",
    )
    body = table(
        ["scheme", "D^T dense", "D^T paired", "G dense", "G paired", "total saved"], rows
    )
    return head + "\n" + body, savings


def render_model_effect() -> tuple[str, list[float]]:
    rows, gains = [], []
    for r, alpha in [(3, 8), (5, 8), (9, 16)]:
        shape = ConvShape.from_ofm(128, 48, 48, 128, r=r)
        paired = estimate_conv(shape, RTX3060TI, alpha=alpha, paired_transforms=True).gflops
        dense = estimate_conv(shape, RTX3060TI, alpha=alpha, paired_transforms=False).gflops
        gains.append(paired / dense)
        rows.append([f"Gamma_{alpha}(.,{r})", f"{dense:,.0f}", f"{paired:,.0f}",
                     f"{paired / dense:.3f}x"])
    head = "\nModeled Gflop/s with dense vs paired transforms (RTX3060Ti, 128x48x48x128):"
    body = table(["kernel", "dense", "paired", "gain"], rows)
    return head + "\n" + body, gains


def test_ablation_simplify(benchmark, artifact):
    (text1, savings), (text2, gains) = benchmark(
        lambda: (render_mul_counts(), render_model_effect())
    )
    artifact("ablation_a2_simplify", text1 + "\n" + text2)
    # "nearly half": every scheme saves at least 35% of transform muls.
    assert all(s > 0.35 for s in savings)
    # The modeled gain grows with alpha (transform share grows with alpha).
    assert gains[-1] > gains[0] > 1.0


def test_pairwise_numerics_identical():
    """The simplification is a pure re-association: bitwise-equal in fp64
    within reassociation tolerance."""
    rng = np.random.default_rng(0)
    m = winograd_matrices(8, 9, dtype="float64")
    x = rng.standard_normal((16, 5))
    np.testing.assert_allclose(pairwise_transform(m.DT, x), m.DT @ x, rtol=1e-12)


if __name__ == "__main__":
    print(render_mul_counts()[0])
    print(render_model_effect()[0])
