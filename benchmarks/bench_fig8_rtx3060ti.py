"""Figure 8: Gamma kernel throughput vs cuDNN on the RTX 3060 Ti model.

Regenerates all nine panels: for each kernel's ten ofm shapes, the modeled
Gflop/s of the Gamma kernel (with and without filter transposition — the
paper's ``*``), its ruse/c64 variants where the paper plots them, cuDNN
Implicit_Precomp_GEMM in NCHW and NHWC, and (for the 3x3 panel)
cuDNN Fused_Winograd.
"""

from __future__ import annotations

import pytest

from repro.bench import FIG8_PANELS, banner, fmt_ofm, panel_shapes, series_line, table
from repro.gpusim import (
    RTX3060TI,
    estimate_conv,
    estimate_cudnn_fused_winograd,
    estimate_cudnn_gemm,
)

DEVICE = RTX3060TI

#: Variants the paper plots per panel (besides base and base*).
EXTRA_VARIANTS = {
    "Gamma_8(4,5)": ["ruse"],
    "Gamma_8(3,6)": ["ruse"],
    "Gamma_8(2,7)": ["ruse"],
    "Gamma_16(10,7)": ["c64"],
    "Gamma_16(9,8)": ["ruse", "c64"],
    "Gamma_16(8,9)": ["ruse", "c64"],
}


def render_panel(name: str, device=DEVICE, panels=FIG8_PANELS, fig: str = "Figure 8") -> str:
    alpha, r, _ = panels[name]
    shapes = panel_shapes(panels[name])
    headers = ["ofm (NxOHxOWxOC)", f"{name}", f"{name}*"]
    series: dict[str, list[float]] = {name: [], f"{name}*": []}
    for variant in EXTRA_VARIANTS.get(name, []):
        headers.append(f"{name}^{variant}")
        series[f"{name}^{variant}"] = []
    if r == 3:
        headers.append("cuDNN-FusedWinograd")
        series["cuDNN-FusedWinograd"] = []
    headers += ["GEMM-NCHW", "GEMM-NHWC"]
    series["GEMM-NCHW"] = []
    series["GEMM-NHWC"] = []

    rows = []
    for shape, a in shapes:
        row: list[object] = [fmt_ofm(shape)]
        base = estimate_conv(shape, device, alpha=a, variant="base").gflops
        star = estimate_conv(
            shape, device, alpha=a, variant="base", include_filter_transpose=False
        ).gflops
        row += [f"{base:,.0f}", f"{star:,.0f}"]
        series[name].append(base)
        series[f"{name}*"].append(star)
        for variant in EXTRA_VARIANTS.get(name, []):
            v = estimate_conv(shape, device, alpha=a, variant=variant).gflops
            row.append(f"{v:,.0f}")
            series[f"{name}^{variant}"].append(v)
        if r == 3:
            fw = estimate_cudnn_fused_winograd(shape, device).gflops
            row.append(f"{fw:,.0f}")
            series["cuDNN-FusedWinograd"].append(fw)
        for layout in ("nchw", "nhwc"):
            g = estimate_cudnn_gemm(shape, device, layout=layout).gflops
            row.append(f"{g:,.0f}")
            series[f"GEMM-{layout.upper()}"].append(g)
        rows.append(row)

    lines = [banner(f"{fig} panel {name} — modeled Gflop/s on {device.name}",
                    "paper metric: standard-conv FLOPs / modeled time")]
    lines.append(table(headers, rows))
    lines.append("")
    for label, vals in series.items():
        lines.append(series_line(label, vals, width=24))
    return "\n".join(lines)


@pytest.mark.parametrize("panel", sorted(FIG8_PANELS))
def test_fig8_panel(benchmark, artifact, panel):
    text = benchmark(render_panel, panel)
    artifact(f"fig8_{panel.replace('(', '_').replace(',', '_').replace(')', '')}", text)


def test_fig8_baseline_store():
    """Persist every Figure 8 series point through the perf-baseline store.

    Writes ``benchmarks/out/BENCH_fig8.json`` (diffable across sessions with
    ``python -m repro.bench.baseline compare``) and checks the snapshot
    round-trips: a self-compare must report zero regressions.
    """
    import pathlib

    from repro.bench.baseline import (
        compare_metrics,
        load_baseline,
        suite_metrics,
        write_baseline,
    )

    metrics = suite_metrics("fig8")
    assert len(metrics) == 2 * sum(len(p[2]) for p in FIG8_PANELS.values())
    path = write_baseline(
        pathlib.Path(__file__).parent / "out" / "BENCH_fig8.json",
        metrics,
        tag="fig8",
        suite="fig8",
    )
    rows, regressions = compare_metrics(load_baseline(path)["metrics"], metrics)
    assert regressions == 0 and len(rows) == len(metrics)


if __name__ == "__main__":
    for panel in FIG8_PANELS:
        print(render_panel(panel))
        print()
