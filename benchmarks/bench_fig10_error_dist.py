"""Figure 10: the distribution of relative error.

For Gamma_16(8,9) and Gamma_16(10,7) vs the CuGEMM stand-in, the histogram
of per-element relative error against the FP64 truth — the paper's claim:
the Gamma_16 distribution sits closer to zero with a smaller average, while
its (rare) maximum error is larger.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_scale
from repro.baselines import conv2d_direct, conv2d_gemm
from repro.bench import FIG10_CONFIGS, TABLE3_SHAPES, banner, table
from repro.core import conv2d_im2col_winograd
from repro.nhwc import ConvShape

BINS = 12


def error_samples(kernel: str) -> tuple[np.ndarray, np.ndarray]:
    """Per-element relative errors (gamma, gemm) pooled over the kernel's
    Table 3 shapes (batch scaled)."""
    alpha, r, ofms = TABLE3_SHAPES[kernel]
    rng = np.random.default_rng(7)
    g_all, m_all = [], []
    for (n, oh, ow, oc) in ofms[:2]:  # the two largest-map shapes suffice
        batch = n if bench_scale() == "full" else max(2, n // 32)
        oc_run = oc if bench_scale() == "full" else min(oc, 8)
        shape = ConvShape.from_ofm(batch, oh, ow, oc_run, r=r, ic=oc)
        x = rng.uniform(1, 2, shape.input_shape).astype(np.float32)
        w = rng.uniform(1, 2, shape.filter_shape).astype(np.float32)
        truth = conv2d_direct(x, w, ph=shape.ph, pw=shape.pw, dtype=np.float64)
        gamma = conv2d_im2col_winograd(x, w, alpha=alpha)
        gemm = conv2d_gemm(x, w, ph=shape.ph, pw=shape.pw, accumulation="sequential")
        g_all.append((np.abs(gamma - truth) / np.abs(truth)).ravel())
        m_all.append((np.abs(gemm - truth) / np.abs(truth)).ravel())
    return np.concatenate(g_all), np.concatenate(m_all)


def render_histogram(kernel: str) -> tuple[str, np.ndarray, np.ndarray]:
    g, m = error_samples(kernel)
    hi = float(np.percentile(np.concatenate([g, m]), 99.5))
    edges = np.linspace(0, hi, BINS + 1)
    gh = np.histogram(g, bins=edges)[0] / g.size * 100
    mh = np.histogram(m, bins=edges)[0] / m.size * 100
    rows = []
    for i in range(BINS):
        rows.append(
            [
                f"{edges[i]:.1E}-{edges[i+1]:.1E}",
                f"{gh[i]:6.2f}%",
                f"{mh[i]:6.2f}%",
                "#" * int(round(gh[i] / 3)),
            ]
        )
    head = banner(
        f"Figure 10 — relative-error distribution, {kernel} vs CuGEMM",
        f"mean: gamma={g.mean():.2E} gemm={m.mean():.2E}; "
        f"max: gamma={g.max():.2E} gemm={m.max():.2E}",
    )
    body = table(["rel. error bin", kernel, "CuGEMM", "gamma hist"], rows)
    return head + "\n" + body, g, m


@pytest.mark.parametrize("kernel", FIG10_CONFIGS)
def test_fig10_distribution(benchmark, artifact, kernel):
    text, g, m = benchmark.pedantic(render_histogram, args=(kernel,), iterations=1, rounds=1)
    artifact(f"fig10_{kernel.replace('(', '_').replace(',', '_').replace(')', '')}", text)
    # What reproduces (see EXPERIMENTS.md): Gamma_16's error mass sits at the
    # 1e-5 scale with a long thin tail ("the proportion of such large values
    # is negligible"); the paper's mean ordering vs CuGEMM depends on cuDNN
    # rounding behaviour our RN-chain stand-in does not exhibit.
    assert g.max() > m.max()
    # "the proportion of such large values is negligible": errors an order
    # of magnitude above the mean are < 2% of elements.
    tail = float((g > 10 * g.mean()).mean())
    assert tail < 0.02


if __name__ == "__main__":
    for kernel in FIG10_CONFIGS:
        print(render_histogram(kernel)[0])
        print()
