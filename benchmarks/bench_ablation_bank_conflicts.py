"""Ablation A1 (§5.2): what the SMEM layouts buy.

Runs the per-iteration trace simulator with and without each of the paper's
three devices: the Gamma_8 ``Ds`` store swizzle, the ``Ys`` staging-array
padding, and the Z-shaped laneIdx arrangement.  Reports SMEM transaction
phases per block iteration / output stage.

Honest limitation (see EXPERIMENTS.md): the Gamma_16 ``Ds`` padding and the
Z-vs-linear load arrangement act through sub-warp store/load scheduling our
per-instruction bank model does not resolve — the trace reports them as
neutral; the Gamma_8 swizzle and Ys padding effects reproduce cleanly.
"""

from __future__ import annotations

import pytest

from repro.bench import banner, table
from repro.core.variants import variant_spec
from repro.gpusim.trace import simulate_block_iteration, simulate_output_stage

KERNELS = [(4, 3, 2), (8, 6, 3), (8, 4, 5), (16, 8, 9)]


def render_ablation() -> tuple[str, dict]:
    rows = []
    results = {}
    for alpha, n, r in KERNELS:
        spec = variant_spec(alpha, n, r)
        on = simulate_block_iteration(spec, swizzle_ds=True, z_lanes=True)
        off = simulate_block_iteration(spec, swizzle_ds=False, z_lanes=True)
        ys_on = simulate_output_stage(spec, padded=True)
        ys_off = simulate_output_stage(spec, padded=False)
        results[(alpha, n, r)] = (on, off, ys_on, ys_off)
        rows.append(
            [
                f"Gamma_{alpha}({n},{r})",
                f"{on.phases}",
                f"{off.phases}",
                f"{off.phases / on.phases:.2f}x",
                f"{ys_on.conflict_overhead:.2f}",
                f"{ys_off.conflict_overhead:.2f}",
            ]
        )
    head = banner(
        "Ablation A1 — SMEM bank conflicts (§5.2)",
        "trace-simulated SMEM phases per main-loop iteration and Ys staging overhead",
    )
    body = table(
        [
            "kernel",
            "iter phases (swizzle/pad on)",
            "off",
            "store saving",
            "Ys ovh (padded)",
            "Ys ovh (bare)",
        ],
        rows,
    )
    return head + "\n" + body, results


def test_ablation_bank_conflicts(benchmark, artifact):
    text, results = benchmark(render_ablation)
    artifact("ablation_a1_bank_conflicts", text)
    for (alpha, n, r), (on, off, ys_on, ys_off) in results.items():
        assert ys_on.conflict_overhead == 0.0
        assert ys_off.conflict_overhead >= 1.0
        if alpha != 16:  # Gamma_8/4 swizzle effect reproduces
            assert on.phases < off.phases


@pytest.mark.parametrize("alpha,n,r", KERNELS)
def test_padded_never_worse(alpha, n, r):
    spec = variant_spec(alpha, n, r)
    on = simulate_block_iteration(spec, swizzle_ds=True)
    off = simulate_block_iteration(spec, swizzle_ds=False)
    assert on.phases <= off.phases


if __name__ == "__main__":
    print(render_ablation()[0])
