"""Observability overhead: disabled-mode tracing must stay under 2%.

The obs layer's contract is "zero-overhead when disabled": every hot-path
instrumentation point is a module-global check plus a shared no-op context
manager.  This artifact measures it directly — 100 fused-convolution calls
with instrumentation disabled vs enabled — and reports the per-call cost.
(The disabled column is the one the < 2% budget applies to; the comparison
baseline is the same loop, which differs from seed code only by the no-op
guards themselves.)

The serve-path variant (``test_serve_telemetry_overhead``) measures the
same contract one layer up: the full request-telemetry stack (W3C traces,
windowed latency histograms, SLO burn-rate tracking) against an untraced
run of the identical closed-loop load, via the ``telemetry-smoke``
baseline suite.  It writes ``benchmarks/out/BENCH_telemetry.json`` — the
capture the committed root-level ``BENCH_telemetry_gate.json`` floors are
distilled from.
"""

from __future__ import annotations

import pathlib
import time

import numpy as np

from repro import obs
from repro.core.fused import conv2d_im2col_winograd

CALLS = 100
SHAPE = dict(batch=4, ih=12, iw=49, ic=32, oc=32)


def _run_calls(x: np.ndarray, w: np.ndarray, calls: int = CALLS) -> float:
    t0 = time.perf_counter_ns()
    for _ in range(calls):
        conv2d_im2col_winograd(x, w)
    return (time.perf_counter_ns() - t0) / 1e9


def test_obs_overhead(artifact):
    rng = np.random.default_rng(3)
    x = rng.standard_normal((SHAPE["batch"], SHAPE["ih"], SHAPE["iw"], SHAPE["ic"])).astype(
        np.float32
    )
    w = rng.standard_normal((SHAPE["oc"], 3, 3, SHAPE["ic"])).astype(np.float32)

    # Restore whatever the session had (--trace-json enables obs globally).
    was_enabled = obs.enabled()
    try:
        obs.disable()
        _run_calls(x, w, 5)  # warm caches / einsum paths
        disabled_s = min(_run_calls(x, w) for _ in range(3))

        obs.enable()
        before = obs.get_tracer().span_count()
        enabled_s = _run_calls(x, w)
        spans = obs.get_tracer().span_count() - before
    finally:
        obs.enable() if was_enabled else obs.disable()

    lines = [
        f"{CALLS} x conv2d_im2col_winograd {SHAPE} (3x3), best of 3:",
        f"  obs disabled: {disabled_s * 1e3:8.2f} ms  ({disabled_s / CALLS * 1e6:.0f} us/call)",
        f"  obs enabled:  {enabled_s * 1e3:8.2f} ms  ({enabled_s / CALLS * 1e6:.0f} us/call, "
        f"{spans} spans recorded)",
        f"  enabled/disabled ratio: {enabled_s / disabled_s:.3f}x",
    ]
    artifact("obs_overhead", "\n".join(lines))

    # Persist the numbers through the perf-baseline store so successive runs
    # can be diffed with `python -m repro.bench.baseline compare --against
    # benchmarks/out/BENCH_obs_overhead.json --candidate <new capture>`.
    from repro.bench.baseline import write_baseline

    out_dir = pathlib.Path(__file__).parent / "out"
    write_baseline(
        out_dir / "BENCH_obs_overhead.json",
        {
            "obs_overhead/disabled.us_per_call": disabled_s / CALLS * 1e6,
            "obs_overhead/enabled.us_per_call": enabled_s / CALLS * 1e6,
            "obs_overhead/enabled_disabled.ratio": enabled_s / disabled_s,
            "obs_overhead/spans_per_call.ratio": spans / CALLS,
        },
        tag="obs_overhead",
        suite="obs_overhead",
    )

    # The budget is on the *disabled* path; enabled tracing may legitimately
    # cost more (it allocates span records).  Guard against gross regressions
    # only — CI machines are noisy.
    assert enabled_s < disabled_s * 3.0


def test_serve_telemetry_overhead(artifact):
    """Serve-path telemetry cost: traced vs untraced closed-loop serving."""
    from repro.bench.baseline import suite_metrics, write_baseline

    metrics = suite_metrics("telemetry-smoke")
    ratio = metrics["telemetry/resnet18/overhead.ratio"]
    lines = [
        "closed-loop resnet18 (w=0.125), telemetry on vs off:",
        f"  off: {metrics['telemetry/resnet18/off.requests_per_sec']:8.1f} req/s  "
        f"p99 {metrics['telemetry/resnet18/off.p99.time_ms']:.2f} ms",
        f"  on:  {metrics['telemetry/resnet18/on.requests_per_sec']:8.1f} req/s  "
        f"p99 {metrics['telemetry/resnet18/on.p99.time_ms']:.2f} ms",
        f"  overhead ratio (off/on): {ratio:.3f}x",
        f"  bit identical: {metrics['telemetry/resnet18/bit_identical']:.0f}  "
        f"traced: {metrics['telemetry/resnet18/traced_fraction']:.2f}  "
        f"attributed: {metrics['telemetry/resnet18/attributed_fraction']:.2f}",
        f"  windowed p50/p99 ms: {metrics['telemetry/resnet18/window.p50.time_ms']:.2f}"
        f"/{metrics['telemetry/resnet18/window.p99.time_ms']:.2f}",
    ]
    artifact("serve_telemetry_overhead", "\n".join(lines))

    out_dir = pathlib.Path(__file__).parent / "out"
    write_baseline(
        out_dir / "BENCH_telemetry.json",
        metrics,
        tag="telemetry",
        suite="telemetry-smoke",
    )

    # Numerics must be untouched; the throughput bound is deliberately loose
    # here (CI machines are noisy) — the real floor lives in the committed
    # BENCH_telemetry_gate.json the CI gate compares against.
    assert metrics["telemetry/resnet18/bit_identical"] == 1.0
    assert metrics["telemetry/resnet18/traced_fraction"] == 1.0
    assert ratio < 3.0


if __name__ == "__main__":
    test_obs_overhead(lambda name, text: print(text))
    test_serve_telemetry_overhead(lambda name, text: print(text))
