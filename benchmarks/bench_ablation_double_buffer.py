"""Ablation A5 (§5.1): what the double-buffered SMEM is worth.

The paper constructs double-buffered SMEM for alpha in {4, 8} "to further
enhance the warp-level parallelism"; alpha=16's larger tiles leave no room.
The event-level timeline simulator quantifies the effect: cycles per
iteration and pipeline utilisation of each kernel, with the double buffer
as built and forcibly disabled.
"""

from __future__ import annotations

import pytest

from repro.bench import banner, table
from repro.core.variants import variant_spec
from repro.gpusim.timeline import simulate_block_timeline

KERNELS = [(4, 3, 2), (8, 6, 3), (8, 4, 5), (8, 2, 7), (16, 10, 7), (16, 8, 9)]
ITERS = 3 * 128 // 8  # FH=3, IC=128 — a mid-network layer


def render() -> tuple[str, dict]:
    rows, results = [], {}
    for alpha, n, r in KERNELS:
        spec = variant_spec(alpha, n, r)
        on = simulate_block_timeline(spec, iterations=ITERS)
        off = simulate_block_timeline(spec, iterations=ITERS, force_single_buffer=True)
        results[(alpha, n, r)] = (on, off)
        rows.append(
            [
                f"Gamma_{alpha}({n},{r})",
                "yes" if spec.double_buffered else "no",
                f"{on.cycles_per_iteration:,.0f}",
                f"{off.cycles_per_iteration:,.0f}",
                f"{off.cycles_per_iteration / on.cycles_per_iteration:.2f}x",
                f"{on.utilisation:.2f}",
            ]
        )
    head = banner(
        "Ablation A5 — §5.1 double-buffered SMEM (timeline simulation)",
        f"{ITERS} iterations (FH=3, IC=128), 2 resident blocks/SM",
    )
    body = table(
        ["kernel", "double-buffered", "cycles/iter", "forced single", "saving", "utilisation"],
        rows,
    )
    return head + "\n" + body, results


def test_ablation_double_buffer(benchmark, artifact):
    text, results = benchmark(render)
    artifact("ablation_a5_double_buffer", text)
    for (alpha, n, r), (on, off) in results.items():
        if alpha in (4, 8):
            assert on.cycles_per_iteration < off.cycles_per_iteration
        else:  # alpha=16 has no double buffer to lose
            assert on.cycles_per_iteration == off.cycles_per_iteration
        assert 0 < on.utilisation <= 1.0


if __name__ == "__main__":
    print(render()[0])
