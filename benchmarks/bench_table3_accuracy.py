"""Table 3: average relative error vs the FP64-CPU ground truth.

The paper's protocol (§6.2.1), executed for real (not modeled): ifms and
filters drawn from U[1,2], OW a multiple of n (no boundary treatment),
FP64 direct convolution as truth; the average relative error of the FP32
Gamma kernel, of the CuGEMM stand-in (sequential-accumulation im2col GEMM)
and — for the 3x3 sub-table — of the fused 2D Winograd F(2x2,3x3)
(CuWinograd stand-in).

The batch dimension is scaled down (it does not affect per-element error);
``REPRO_BENCH_SCALE=full`` restores the paper's batch sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_scale
from repro.baselines import conv2d_direct, conv2d_gemm, conv2d_winograd2d
from repro.bench import TABLE3_SHAPES, banner, fmt_ofm, table
from repro.core import conv2d_im2col_winograd
from repro.nhwc import ConvShape


def scaled_batch(n: int) -> int:
    return n if bench_scale() == "full" else max(2, n // 32)


def scaled_oc(oc: int) -> int:
    """Relative error is independent of OC (each output channel is an
    independent GK-length reduction); shrinking OC only cuts runtime."""
    return oc if bench_scale() == "full" else min(oc, 8)


def mean_relative_error(got: np.ndarray, truth: np.ndarray) -> float:
    return float(np.mean(np.abs(got.astype(np.float64) - truth) / np.abs(truth)))


def run_subtable(kernel: str) -> tuple[str, dict[str, list[float]]]:
    alpha, r, ofms = TABLE3_SHAPES[kernel]
    rng = np.random.default_rng(42)
    rows = []
    errs: dict[str, list[float]] = {"gamma": [], "gemm": [], "wino2d": []}
    for (n, oh, ow, oc) in ofms:
        shape = ConvShape.from_ofm(scaled_batch(n), oh, ow, scaled_oc(oc), r=r, ic=oc)
        x = rng.uniform(1, 2, shape.input_shape).astype(np.float32)
        w = rng.uniform(1, 2, shape.filter_shape).astype(np.float32)
        truth = conv2d_direct(x, w, ph=shape.ph, pw=shape.pw, dtype=np.float64)
        e_gamma = mean_relative_error(
            conv2d_im2col_winograd(x, w, alpha=alpha), truth
        )
        e_gemm = mean_relative_error(
            conv2d_gemm(x, w, ph=shape.ph, pw=shape.pw, accumulation="sequential"), truth
        )
        errs["gamma"].append(e_gamma)
        errs["gemm"].append(e_gemm)
        row = [f"{n}x{oh}x{ow}x{oc}", f"{e_gamma:.2E}", f"{e_gemm:.2E}"]
        if r == 3:
            e_w2 = mean_relative_error(conv2d_winograd2d(x, w, m=2), truth)
            errs["wino2d"].append(e_w2)
            row.append(f"{e_w2:.2E}")
        rows.append(row)
    headers = ["ofm (paper batch)", kernel, "CuGEMM"]
    if r == 3:
        headers.append("CuWinograd")
    return table(headers, rows), errs


@pytest.mark.parametrize("kernel", sorted(TABLE3_SHAPES))
def test_table3_subtable(benchmark, artifact, kernel):
    text, errs = benchmark.pedantic(run_subtable, args=(kernel,), iterations=1, rounds=1)
    head = banner(
        f"Table 3 sub-table — {kernel} average relative error",
        "U[1,2] data, FP64-CPU truth, OW multiple of n (batch scaled; see conftest)",
    )
    artifact(f"table3_{kernel.replace('(', '_').replace(',', '_').replace(')', '')}", head + "\n" + text)

    alpha = TABLE3_SHAPES[kernel][0]
    gamma = np.array(errs["gamma"])
    gemm = np.array(errs["gemm"])
    # Paper structure: Gamma_8 errors ~1e-7; Gamma_16 ~1e-5; CuGEMM worse
    # than Gamma_8 everywhere and worse than Gamma_16 on average.
    if alpha == 8:
        # Paper structure that reproduces: Gamma_8 errors ~1e-7, below the
        # sequential-chain CuGEMM stand-in whose error grows with GK.
        assert gamma.max() < 5e-6
        assert gamma.mean() < gemm.mean()
        assert np.all(gamma < 2 * gemm)
    else:
        # Gamma_16 lands ~1e-5 as in the paper.  NOTE (EXPERIMENTS.md):
        # our round-to-nearest FMA chain is *more* accurate than the error
        # cuDNN exhibits in Table 3, so the paper's Gamma_16 < CuGEMM
        # ordering does not reproduce — only the Gamma_16 error scale does.
        assert 5e-7 < gamma.mean() < 5e-4
    assert gemm.mean() > 5e-8
    # CuGEMM error grows with GK (= IC * r^2): last row worst.
    assert gemm[-1] > gemm[0]


def test_table3_error_grows_with_alpha():
    """§6.2.2: larger alpha -> larger transform-magnitude disparity -> lower
    accuracy (Gamma_16 about two orders above Gamma_8)."""
    _, e8 = run_subtable("Gamma_8(6,3)")
    _, e16 = run_subtable("Gamma_16(8,9)")
    assert np.mean(e16["gamma"]) > 10 * np.mean(e8["gamma"])


if __name__ == "__main__":
    for kernel in TABLE3_SHAPES:
        text, _ = run_subtable(kernel)
        print(banner(f"Table 3 — {kernel}"))
        print(text)
        print()
