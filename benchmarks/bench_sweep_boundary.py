"""OW sweep: the §6.1.2 fluctuation pattern, made visible.

"Gamma has optimal performance when OW % n == 0; otherwise, the overall
performance is compromised by slower algorithms ... the performance exhibits
larger fluctuations in intervals with smaller ofms, and tends to be smoother
as n/alpha decreases."

This bench sweeps OW over two full periods of ``n`` for three kernels with
different ``n/alpha`` (Gamma_8(6,3): 0.75, Gamma_8(4,5): 0.5, Gamma_8(2,7):
0.25) at a small and a large feature-map scale, and quantifies the
peak-to-trough fluctuation of the modeled Gflop/s.
"""

from __future__ import annotations

import pytest

from repro.bench import banner, series_line, table
from repro.gpusim import RTX3060TI, estimate_conv
from repro.nhwc import ConvShape

KERNELS = [(8, 3, 6), (8, 5, 4), (8, 7, 2)]  # (alpha, r, n)


def sweep(alpha: int, r: int, n: int, base_ow: int, batch: int) -> list[float]:
    out = []
    for ow in range(base_ow, base_ow + 2 * n + 1):
        shape = ConvShape.from_ofm(batch, base_ow, ow, 128, r=r)
        out.append(
            estimate_conv(
                shape, RTX3060TI, alpha=alpha, variant="base",
                include_filter_transpose=False,
            ).gflops
        )
    return out


def fluctuation(series: list[float]) -> float:
    return (max(series) - min(series)) / max(series)


def render() -> tuple[str, dict]:
    lines = [
        banner(
            "OW sweep — §6.1.2 boundary fluctuation",
            "modeled Gflop/s over two periods of n; fluctuation = (max-min)/max",
        )
    ]
    rows = []
    flucts: dict[tuple[int, int, int], float] = {}
    for alpha, r, n in KERNELS:
        for base_ow, label in ((12, "small maps"), (48, "large maps")):
            series = sweep(alpha, r, n, base_ow, batch=128)
            f = fluctuation(series)
            flucts[(alpha, r, base_ow)] = f
            lines.append(
                series_line(f"G_{alpha}({n},{r}) OW={base_ow}..", series, width=22)
            )
            rows.append([f"Gamma_{alpha}({n},{r})", label, f"n/a={n}/{alpha}", f"{f:.1%}"])
    lines.append("")
    lines.append(table(["kernel", "regime", "tile fraction", "fluctuation"], rows))
    return "\n".join(lines), flucts


def test_sweep_boundary(benchmark, artifact):
    text, flucts = benchmark(render)
    artifact("sweep_boundary_fluctuation", text)
    for (alpha, r, base_ow), f in flucts.items():
        assert 0 <= f < 0.6
    # Small maps fluctuate more than large maps for the same kernel.
    for alpha, r, n in KERNELS:
        assert flucts[(alpha, r, 12)] >= flucts[(alpha, r, 48)] - 0.02, (alpha, r)
    # Smoother as n/alpha decreases (§6.1.2): Gamma_8(2,7) (r=7) flattest.
    assert flucts[(8, 7, 12)] <= flucts[(8, 3, 12)] + 0.02


if __name__ == "__main__":
    print(render()[0])
