"""Ablation A4 (§5.5): multi-kernel boundary treatment vs masking.

Two comparisons over an OW sweep around a multiple of n:

* wasted-work fraction of the rejected conditional-masking design
  (the paper's example: OW=7 under n=6 wastes 5/12 of the tile work);
* modeled Gflop/s of the shipped segmentation vs a hypothetical
  masked single kernel (same kernel covering ceil(OW/n) tiles and
  discarding the overhang).
"""

from __future__ import annotations

import pytest

from repro.bench import banner, table
from repro.core.boundary import plan_width_segments, redundant_fraction
from repro.core.kernels import get_kernel
from repro.gpusim import RTX3060TI, estimate_winograd_segment
from repro.gpusim.perfmodel import estimate_conv
from repro.nhwc import ConvShape

R = 3
ALPHA = 8
N = 6  # Gamma_8(6,3)


def masked_gflops(shape: ConvShape) -> float:
    """Hypothetical masked kernel: rounds OW up to a multiple of n, computes
    the full tiles, throws the overhang away."""
    padded_ow = -(-shape.ow // N) * N
    kernel = get_kernel(ALPHA, R, "base")
    seg = estimate_winograd_segment(shape, kernel, RTX3060TI, ow_segment=padded_ow)
    return shape.flops / (seg.time_ms * 1e-3) / 1e9


def render() -> tuple[str, list[tuple[float, float]]]:
    rows, pairs = [], []
    for ow in range(48, 55):
        shape = ConvShape.from_ofm(128, 48, ow, 128, r=R)
        segmented = estimate_conv(
            shape, RTX3060TI, alpha=ALPHA, variant="base", include_filter_transpose=False
        ).gflops
        masked = masked_gflops(shape)
        pairs.append((segmented, masked))
        segs = plan_width_segments(ow, R, primary=get_kernel(ALPHA, R, "base"))
        rows.append(
            [
                ow,
                f"{redundant_fraction(ow, N):.1%}",
                " + ".join(f"{s.name}:{s.width}" for s in segs),
                f"{segmented:,.0f}",
                f"{masked:,.0f}",
                f"{segmented / masked:.3f}x",
            ]
        )
    head = banner(
        "Ablation A4 — §5.5 boundary treatment vs conditional masking",
        f"Gamma_{ALPHA}({N},{R}) on 128x48xOWx128, RTX3060Ti model",
    )
    body = table(
        ["OW", "masking waste", "segmentation", "segmented Gf/s", "masked Gf/s", "ratio"],
        rows,
    )
    return head + "\n" + body, pairs


def test_ablation_boundary(benchmark, artifact):
    text, pairs = benchmark(render)
    artifact("ablation_a4_boundary", text)
    # At exact coverage the two coincide (no masking waste).
    exact_seg, exact_mask = pairs[0]
    assert exact_seg == pytest.approx(exact_mask, rel=0.02)
    # On ragged widths, masking wastes work: worst case near OW % n == 1.
    worst_seg, worst_mask = pairs[1]  # OW = 49
    assert worst_mask < exact_mask * 0.95


def test_paper_waste_example():
    assert redundant_fraction(7, 6) == pytest.approx(5 / 12)


if __name__ == "__main__":
    print(render()[0])
